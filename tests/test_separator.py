"""Tests for path merging, path reduction and separator construction
(Section 4, Theorem 3.1)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.path_merge import merge_paths
from repro.core.reduction import paths_form_separator, reduce_paths, split_short_at
from repro.core.separator import build_separator
from repro.core.verify import check_path_collection, is_separator
from repro.graph import Graph
from repro.graph import generators as G
from repro.pram import Tracker


class TestSplitShortAt:
    def test_middle(self):
        absorbed, rest = split_short_at([1, 2, 3, 4, 5], 2)
        assert absorbed == [2, 1]  # outward from y=3
        assert rest == [4, 5]

    def test_longer_after(self):
        absorbed, rest = split_short_at([1, 2, 3, 4, 5], 1)
        assert absorbed == [3, 4, 5]
        assert rest == [1]

    def test_endpoint(self):
        absorbed, rest = split_short_at([1, 2, 3], 0)
        assert absorbed == [2, 3]
        assert rest == []

    def test_singleton(self):
        absorbed, rest = split_short_at([7], 0)
        assert absorbed == []
        assert rest == []


class TestMergePaths:
    def test_single_long_reaches_short(self):
        # path graph: long [0], short [4]; connector must be 1-2-3
        g = G.path_graph(5)
        t = Tracker()
        res = merge_paths(g, t, [[0]], [[4]], random.Random(1), threshold=1.0)
        assert res.p1 == [0]
        st0 = res.longs[0]
        assert st0.status == "succeeded"
        si, y = st0.joined_short
        assert si == 0 and y == 4
        assert st0.cur == [0, 1, 2, 3]

    def test_dead_end_kills_path(self):
        # long path [0] in a path graph with NO short: head dies repeatedly
        g = G.path_graph(3)
        t = Tracker()
        res = merge_paths(g, t, [[0, 1, 2]], [], random.Random(1), threshold=1.0)
        # no shorts to reach: everything dies
        assert res.longs[0].status == "dead"
        assert res.p1 == [] and res.p2 == []

    def test_threshold_stops_early(self):
        g = G.path_graph(6)
        t = Tracker()
        # threshold larger than #heads: no steps happen; the long stays as P2
        res = merge_paths(g, t, [[0]], [[5]], random.Random(1), threshold=5.0)
        assert res.p2 == [0]
        assert res.steps == 0

    def test_two_longs_compete_for_one_short(self):
        # star of paths: two longs can reach the single short; only one may
        # join it (paths in P are vertex disjoint; short joins at most one)
        g = Graph(7, [(0, 2), (1, 3), (2, 4), (3, 4), (4, 5), (4, 6)])
        t = Tracker()
        res = merge_paths(
            g, t, [[0], [1]], [[5]], random.Random(3), threshold=1.0
        )
        assert len(res.p1) <= 1
        assert len(res.joined_shorts) <= 1

    def test_extensions_are_disjoint_graph_paths(self):
        rng = random.Random(9)
        g = G.gnm_random_connected_graph(60, 150, seed=9)
        vs = list(range(60))
        rng.shuffle(vs)
        longs = [[vs[0]], [vs[1]], [vs[2]]]
        shorts = [[vs[3]], [vs[4]], [vs[5]], [vs[6]]]
        t = Tracker()
        res = merge_paths(g, t, longs, shorts, rng, threshold=1.0)
        seen = set()
        for st_ in res.longs:
            ext = st_.extension
            for a, b in zip(st_.cur, st_.cur[1:]):
                assert g.has_edge(a, b)
            for v in ext:
                assert v not in seen
                seen.add(v)

    def test_work_scales_with_changes_not_graph(self):
        # merging with everything already short-adjacent should not re-scan
        # the whole graph repeatedly
        g = G.gnm_random_connected_graph(256, 1024, seed=5)
        t = Tracker()
        longs = [[v] for v in range(0, 16)]
        shorts = [[v] for v in range(16, 256)]
        res = merge_paths(g, t, longs, shorts, random.Random(2), threshold=1.0)
        logn = g.n.bit_length()
        assert t.work <= 60 * (g.m + g.n) * logn  # far below m * steps


class TestReducePaths:
    def check_reduction(self, g, seed=0):
        t = Tracker()
        rng = random.Random(seed)
        paths = [[v] for v in range(g.n)]
        goal = max(1.0, 4 * g.n ** 0.5)
        new = reduce_paths(g, t, paths, rng, goal)
        assert check_path_collection(g, new) is None
        assert paths_form_separator(g, t, new)
        assert len(new) < g.n
        return new

    def test_on_grid(self):
        self.check_reduction(G.grid_graph(8, 8))

    def test_on_gnm(self):
        self.check_reduction(G.gnm_random_connected_graph(100, 300, seed=2))

    def test_on_tree(self):
        self.check_reduction(G.random_tree(80, seed=3))

    def test_on_path(self):
        self.check_reduction(G.path_graph(64))

    def test_on_expander(self):
        self.check_reduction(G.random_regular_graph(64, 6, seed=4))

    @given(st.integers(20, 80), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_property_separator_preserved(self, n, seed):
        g = G.gnm_random_connected_graph(n, 2 * n, seed=seed)
        self.check_reduction(g, seed=seed)


class TestBuildSeparator:
    def run(self, g, factor=4.0, seed=0):
        t = Tracker()
        res = build_separator(
            g, t, random.Random(seed), target_factor=factor, verify=True
        )
        assert check_path_collection(g, res.paths) is None
        assert is_separator(g, res.vertices)
        return res, t

    def test_grid(self):
        g = G.grid_graph(10, 10)
        res, _ = self.run(g)
        assert res.n_paths <= 4 * g.n ** 0.5 + 1

    def test_gnm(self):
        g = G.gnm_random_connected_graph(200, 600, seed=1)
        res, _ = self.run(g)
        assert res.n_paths <= 4 * g.n ** 0.5 + 1

    def test_path_graph(self):
        g = G.path_graph(100)
        res, _ = self.run(g)
        assert res.n_paths <= 4 * 10 + 1

    def test_tree(self):
        g = G.random_tree(150, seed=2)
        res, _ = self.run(g)
        assert res.n_paths <= 4 * g.n ** 0.5 + 1

    def test_history_monotone(self):
        g = G.gnm_random_connected_graph(150, 450, seed=3)
        res, _ = self.run(g)
        assert all(a > b for a, b in zip(res.history, res.history[1:]))

    def test_tiny_graph(self):
        g = G.path_graph(4)
        res, _ = self.run(g)
        assert is_separator(g, res.vertices)

    def test_work_near_linear(self):
        g = G.gnm_random_connected_graph(512, 1536, seed=4)
        _, t = self.run(g)
        logn = g.n.bit_length()
        # Theorem 3.1 allows O(m log^7 n); we should be far below that
        assert t.work <= 10 * g.m * logn**3

    def test_depth_near_sqrt(self):
        g = G.gnm_random_connected_graph(1024, 3072, seed=5)
        _, t = self.run(g)
        logn = g.n.bit_length()
        assert t.span <= 30 * (g.n ** 0.5) * logn**3

    def test_paths_count_sqrt_scaling(self):
        counts = {}
        for n in (64, 256, 1024):
            g = G.gnm_random_connected_graph(n, 3 * n, seed=6)
            res, _ = self.run(g)
            counts[n] = res.n_paths
        # 4x n -> about 2x path count (sqrt scaling), with slack
        assert counts[256] <= 3.2 * counts[64] + 4
        assert counts[1024] <= 3.2 * counts[256] + 4

    @given(st.integers(8, 60), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_property_always_separator(self, n, seed):
        g = G.gnm_random_connected_graph(
            n, min(2 * n, n * (n - 1) // 2), seed=seed
        )
        self.run(g, seed=seed)
