"""Tests for the workload generators."""

import pytest

from repro.graph import generators as G


class TestDeterministicFamilies:
    def test_path(self):
        g = G.path_graph(5)
        assert g.n == 5 and g.m == 4
        assert g.is_connected()
        degs = sorted(g.degree(v) for v in range(5))
        assert degs == [1, 1, 2, 2, 2]

    def test_cycle(self):
        g = G.cycle_graph(6)
        assert g.m == 6
        assert all(g.degree(v) == 2 for v in range(6))

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            G.cycle_graph(2)

    def test_star(self):
        g = G.star_graph(7)
        assert g.degree(0) == 6
        assert all(g.degree(v) == 1 for v in range(1, 7))

    def test_complete(self):
        g = G.complete_graph(5)
        assert g.m == 10

    def test_grid(self):
        g = G.grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.is_connected()

    def test_hypercube(self):
        g = G.hypercube_graph(4)
        assert g.n == 16
        assert all(g.degree(v) == 4 for v in range(16))

    def test_binary_tree(self):
        g = G.binary_tree_graph(15)
        assert g.m == 14
        assert g.is_connected()

    def test_caterpillar(self):
        g = G.caterpillar_graph(5, legs_per_vertex=2)
        assert g.n == 15
        assert g.m == 14
        assert g.is_connected()

    def test_broom(self):
        g = G.broom_graph(10, 5)
        assert g.n == 15
        assert g.degree(9) == 6

    def test_lollipop(self):
        g = G.lollipop_graph(5, 7)
        assert g.n == 12
        assert g.m == 10 + 7
        assert g.is_connected()

    def test_barbell(self):
        g = G.barbell_graph(4, 3)
        assert g.n == 11
        assert g.is_connected()


class TestRandomFamilies:
    def test_random_tree_is_tree(self):
        for seed in range(5):
            g = G.random_tree(50, seed=seed)
            assert g.m == 49
            assert g.is_connected()

    def test_random_tree_deterministic_per_seed(self):
        assert G.random_tree(30, seed=7).edges == G.random_tree(30, seed=7).edges
        assert G.random_tree(30, seed=7).edges != G.random_tree(30, seed=8).edges

    def test_gnm_counts(self):
        g = G.gnm_random_graph(20, 35, seed=1)
        assert g.n == 20 and g.m == 35

    def test_gnm_rejects_overfull(self):
        with pytest.raises(ValueError):
            G.gnm_random_graph(4, 7)

    def test_gnm_connected(self):
        for seed in range(5):
            g = G.gnm_random_connected_graph(40, 60, seed=seed)
            assert g.m == 60
            assert g.is_connected()

    def test_gnm_connected_rejects_too_sparse(self):
        with pytest.raises(ValueError):
            G.gnm_random_connected_graph(10, 5)

    def test_random_regular(self):
        g = G.random_regular_graph(30, 4, seed=3)
        assert all(g.degree(v) == 4 for v in range(30))

    def test_random_regular_parity(self):
        with pytest.raises(ValueError):
            G.random_regular_graph(5, 3)

    def test_small_world(self):
        g = G.small_world_graph(40, k=4, beta=0.2, seed=2)
        assert g.n == 40
        assert g.m >= 40  # roughly n*k/2, rewiring can only collide rarely

    def test_small_world_validates(self):
        with pytest.raises(ValueError):
            G.small_world_graph(10, k=3)

    def test_two_level_community(self):
        g = G.two_level_community_graph(80, communities=4, seed=5)
        assert g.n == 80
        assert g.is_connected()


class TestFamilyRegistry:
    def test_all_registered_families_build_connected(self):
        for name in G.FAMILIES:
            g = G.make_family(name, 64, seed=11)
            assert g.n >= 49, name
            assert g.is_connected(), name

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            G.make_family("nope", 10)
