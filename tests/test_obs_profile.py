"""PhaseProfiler regression tests (satellite of the obs PR).

Pins the re-entrancy and error contracts introduced when the profiler
was reimplemented on tracer spans: overlapping phases raise, same-name
recursion is timed only at the outermost level, ``export_into`` refuses
open phases and key collisions, and each phase section opens a
``phase:<name>`` span on the active tracer.
"""

import itertools

import pytest

from repro.obs import Tracer, activate
from repro.obs import profile as profile_mod
from repro.obs.profile import (
    PHASE_STAT_PREFIX,
    PhaseError,
    PhaseProfiler,
    phase_seconds,
)


@pytest.fixture
def tick_clock(monkeypatch):
    """Replace the profiler's clock: advances 1.0 per call."""
    counter = itertools.count(1)
    monkeypatch.setattr(
        profile_mod.time, "perf_counter", lambda: float(next(counter))
    )


class TestPhaseBookkeeping:
    def test_sequential_phases_accumulate(self, tick_clock):
        prof = PhaseProfiler()
        with prof.phase("a"):
            pass  # open reads 1.0, close reads 2.0
        with prof.phase("b"):
            pass  # 3.0 .. 4.0
        with prof.phase("a"):
            pass  # 5.0 .. 6.0
        assert prof.seconds == {"a": 2.0, "b": 1.0}

    def test_same_name_reentrancy_timed_once_at_outermost(self, tick_clock):
        prof = PhaseProfiler()
        with prof.phase("solve"):  # open reads 1.0
            with prof.phase("solve"):  # inner: no clock reads
                with prof.phase("solve"):
                    pass
        # close reads 2.0; double-counting would report > 1.0
        assert prof.seconds == {"solve": 1.0}

    def test_cross_name_overlap_raises(self):
        prof = PhaseProfiler()
        with pytest.raises(PhaseError, match="still open"):
            with prof.phase("a"):
                with prof.phase("b"):
                    pass

    def test_overlap_error_names_both_phases(self):
        prof = PhaseProfiler()
        with pytest.raises(PhaseError, match=r"'b'.*'a'"):
            with prof.phase("a"):
                with prof.phase("b"):
                    pass

    def test_usable_after_overlap_error(self, tick_clock):
        prof = PhaseProfiler()
        with pytest.raises(PhaseError):
            with prof.phase("a"):
                with prof.phase("b"):
                    pass
        # the failed open did not corrupt the bookkeeping
        with prof.phase("c"):
            pass
        assert "c" in prof.seconds
        assert prof._open_depth == 0


class TestExportInto:
    def test_export_writes_prefixed_keys(self, tick_clock):
        prof = PhaseProfiler()
        with prof.phase("sep"):
            pass
        stats: dict = {"work": 10}
        prof.export_into(stats)
        assert stats[PHASE_STAT_PREFIX + "sep"] == 1.0
        assert phase_seconds(stats) == {"sep": 1.0}

    def test_export_with_open_phase_raises(self):
        prof = PhaseProfiler()
        with pytest.raises(PhaseError, match="still open"):
            with prof.phase("a"):
                prof.export_into({})

    def test_export_key_collision_raises(self, tick_clock):
        prof = PhaseProfiler()
        with prof.phase("sep"):
            pass
        stats = {PHASE_STAT_PREFIX + "sep": 0.5}
        with pytest.raises(PhaseError, match="already present"):
            prof.export_into(stats)

    def test_double_export_raises(self, tick_clock):
        prof = PhaseProfiler()
        with prof.phase("sep"):
            pass
        stats: dict = {}
        prof.export_into(stats)
        with pytest.raises(PhaseError, match="called twice"):
            prof.export_into(stats)


class TestPhaseSpans:
    def test_phase_opens_span_on_active_tracer(self):
        trc = Tracer()
        prof = PhaseProfiler()
        with activate(trc):
            with prof.phase("separator"):
                with prof.phase("separator"):
                    pass
        # every section opens a span, including re-entrant ones
        assert [s.name for s in trc.spans] == [
            "phase:separator", "phase:separator",
        ]

    def test_disabled_tracer_is_untouched(self):
        prof = PhaseProfiler()
        with prof.phase("separator"):
            pass
        assert prof.seconds.keys() == {"separator"}
