"""Hypothesis front-end for the differential fuzz harness.

The budgeted CLI (``python -m repro.analysis.fuzz``) explores with raw
seeds; these wrappers expose the same two case shapes to hypothesis so a
divergence shrinks to a minimal family/size/op-sequence instead of an
opaque seed. Op sequences are generated *structurally* (the abstract op
tuples of :func:`repro.analysis.fuzz.check_ops_case`), which is what
makes shrinking effective: hypothesis deletes ops and shrinks indices.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.fuzz import (
    FUZZ_FAMILIES,
    check_dfs_case,
    check_ops_case,
    run,
)
from repro.graph.generators import make_family

def _settings(max_examples):
    return settings(
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
        max_examples=max_examples,
    )

_idx = st.integers(0, 63)
_depth = st.integers(0, 31)
_op = st.one_of(
    st.tuples(st.just("flag"), st.lists(_idx, min_size=1, max_size=4)),
    st.tuples(st.just("unflag"), st.lists(_idx, min_size=1, max_size=3)),
    st.tuples(st.just("witness"), _idx, _idx, _depth),
    st.tuples(
        st.just("delete"),
        st.lists(_idx, min_size=1, max_size=3),
        st.lists(_depth, min_size=1, max_size=3),
    ),
)


class TestDFSDifferential:
    @_settings(20)
    @given(
        family=st.sampled_from(FUZZ_FAMILIES),
        n=st.integers(16, 60),
        graph_seed=st.integers(0, 2**16 - 1),
        rng_seed=st.integers(0, 2**16 - 1),
        root=st.integers(0, 2**16 - 1),
    )
    def test_backends_and_oracle(self, family, n, graph_seed, rng_seed, root):
        check_dfs_case(family, n, graph_seed, rng_seed, root)


class TestOpsDifferential:
    @_settings(30)
    @given(
        family=st.sampled_from(FUZZ_FAMILIES),
        n=st.integers(8, 24),
        graph_seed=st.integers(0, 2**16 - 1),
        ops=st.lists(_op, max_size=8),
    )
    def test_lockstep_queries(self, family, n, graph_seed, ops):
        g = make_family(family, n, seed=graph_seed)
        check_ops_case(g, ops)


class TestBudgetedRunner:
    def test_short_run_is_clean(self):
        summary = run(budget=2.0, seed=1234)
        assert summary["cases"] > 0
        assert summary["failures"] == []

    def test_case_cap(self):
        summary = run(budget=60.0, seed=7, max_cases=5)
        assert summary["cases"] == 5
