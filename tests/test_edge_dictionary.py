"""Tests for the deterministic edge dictionary (Appendix C, D3)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import generators as G
from repro.pram import Tracker
from repro.structures.edge_dictionary import EdgeDictionary


def make(n=20, m=50, seed=0, **kw):
    g = G.gnm_random_graph(n, m, seed=seed)
    return g, EdgeDictionary(g, **kw)


class TestBasics:
    def test_starts_empty(self):
        g, d = make()
        assert len(d) == 0
        assert d.lookup(g.edges[:3]) == [False, False, False]

    def test_initially_present(self):
        g, d = make(initially_present=True)
        assert len(d) == g.m
        assert all(d.lookup(g.edges))

    def test_insert_lookup_delete(self):
        g, d = make()
        batch = g.edges[:5]
        d.insert(batch)
        assert all(d.lookup(batch))
        assert len(d) == 5
        d.delete(batch[:2])
        assert d.lookup(batch) == [False, False, True, True, True]

    def test_orientation_insensitive(self):
        g, d = make()
        u, v = g.edges[0]
        d.insert([(v, u)])
        assert (u, v) in d and (v, u) in d

    def test_outside_universe_rejected(self):
        g, d = make(n=10, m=10)
        missing = next(
            (a, b)
            for a in range(10)
            for b in range(a + 1, 10)
            if not g.has_edge(a, b)
        )
        with pytest.raises(KeyError, match="universe"):
            d.insert([missing])

    def test_double_insert_rejected(self):
        g, d = make()
        d.insert(g.edges[:1])
        with pytest.raises(KeyError, match="already"):
            d.insert(g.edges[:1])

    def test_delete_absent_rejected(self):
        g, d = make()
        with pytest.raises(KeyError, match="not present"):
            d.delete(g.edges[:1])

    def test_duplicate_universe_rejected(self):
        with pytest.raises(ValueError):
            EdgeDictionary([(0, 1), (1, 0)])


class TestPayloadsAndSampling:
    def test_payloads(self):
        g, d = make()
        d.insert(g.edges[:3], payloads=["a", "b", "c"])
        assert d.get_payload(*g.edges[1]) == "b"
        d.delete(g.edges[1:2])
        with pytest.raises(KeyError):
            d.get_payload(*g.edges[1])

    def test_sample_distinct_present(self):
        g, d = make(initially_present=True)
        got = d.sample(7)
        assert len(got) == 7 and len(set(got)) == 7
        assert all(e in d for e in got)

    def test_present_edges(self):
        g, d = make()
        d.insert(g.edges[10:15])
        assert sorted(d.present_edges()) == sorted(g.edges[10:15])


class TestCostsAndProperties:
    def test_batch_cost_bounds(self):
        g = G.gnm_random_graph(200, 800, seed=1)
        t = Tracker()
        d = EdgeDictionary(g, tracker=t)
        t.reset()
        d.insert(g.edges[:32])
        logu = (g.m).bit_length()
        assert t.work <= 30 * 32 * logu
        assert t.span <= 20 * logu * logu

    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_set_model(self, seed):
        rng = random.Random(seed)
        g = G.gnm_random_graph(15, 40, seed=seed)
        d = EdgeDictionary(g)
        model = set()
        for _ in range(30):
            e = g.edges[rng.randrange(g.m)]
            if e in model:
                if rng.random() < 0.7:
                    d.delete([e])
                    model.discard(e)
            else:
                d.insert([e])
                model.add(e)
            assert len(d) == len(model)
        assert set(d.present_edges()) == model
