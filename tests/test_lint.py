"""Tests for repro-lint: per-rule fixtures, suppression, baseline, CLI.

Each rule gets a true-positive fixture (minimal synthetic source under a
fabricated ``repro/...`` path that must be flagged), a true-negative
(the compliant spelling of the same code must be clean), and a
suppression check (the violation plus a ``# repro-lint: disable=``
comment must produce zero findings).  The baseline tests pin the
checked-in ``lint-baseline.json`` to the actual state of ``src/repro``:
zero unbaselined findings, zero stale entries, every entry justified by
a note.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.lint import ALL_RULES, Baseline, lint_paths, lint_sources

REPO = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO / "src" / "repro"
BASELINE = REPO / "lint-baseline.json"


def run_rule(rel: str, source: str, only=None):
    """Lint one synthetic file at package-relative path ``rel``."""
    res = lint_sources([(f"<test>/{rel}", rel, textwrap.dedent(source))], only=only)
    assert not res.parse_errors, res.parse_errors
    return res


def rule_ids(res):
    return [f.rule for f in res.findings]


# ----------------------------------------------------------------------
# R001: untracked work
# ----------------------------------------------------------------------
R001_BAD = """
    def total_degree(g):
        total = 0
        for v in g.vertices:
            total += len(g.adj[v])
        return total
"""

R001_GOOD = """
    def total_degree(t, g):
        total = 0
        for v in g.vertices:
            t.op(1)
            total += len(g.adj[v])
        return total
"""


def test_r001_flags_untracked_loop():
    res = run_rule("core/example.py", R001_BAD, only=["R001"])
    assert rule_ids(res) == ["R001"]
    assert "total_degree" in res.findings[0].message


def test_r001_accepts_charged_loop():
    res = run_rule("core/example.py", R001_GOOD, only=["R001"])
    assert rule_ids(res) == []


def test_r001_accepts_any_charge_method():
    for call in ("t.charge(len(xs), 1)", "t.parallel_for(xs, f)"):
        src = f"""
            def go(t, xs, f):
                for x in xs:
                    pass
                {call}
        """
        res = run_rule("matching/example.py", src, only=["R001"])
        assert rule_ids(res) == [], call


def test_r001_ignores_constant_sized_loops():
    src = """
        def pick():
            out = []
            for i in range(3):
                out.append(i)
            return [c for c in (0, 1, 2)]
    """
    res = run_rule("core/example.py", src, only=["R001"])
    assert rule_ids(res) == []


def test_r001_scope_is_tracked_packages_only():
    res = run_rule("analysis/example.py", R001_BAD, only=["R001"])
    assert rule_ids(res) == []


def test_r001_suppression():
    src = """
        def total_degree(g):
            total = 0
            for v in g.vertices:  # repro-lint: disable=R001
                total += len(g.adj[v])
            return total
    """
    res = run_rule("core/example.py", src, only=["R001"])
    assert rule_ids(res) == []
    assert res.suppressed == 1


# ----------------------------------------------------------------------
# R002: nondeterministic iteration
# ----------------------------------------------------------------------
R002_BAD = """
    def labels(roots):
        seen = set(roots)
        return [v for v in seen]
"""

R002_GOOD = """
    def labels(roots):
        seen = set(roots)
        return [v for v in sorted(seen)]
"""


def test_r002_flags_unsorted_set_iteration():
    res = run_rule("kernels/example.py", R002_BAD, only=["R002"])
    assert rule_ids(res) == ["R002"]


def test_r002_accepts_sorted_iteration():
    res = run_rule("kernels/example.py", R002_GOOD, only=["R002"])
    assert rule_ids(res) == []


def test_r002_flags_dict_views():
    src = """
        def invert(pairs):
            d = dict(pairs)
            out = {}
            for k, v in d.items():
                out[v] = k
            return out
    """
    res = run_rule("structures/example.py", src, only=["R002"])
    assert rule_ids(res) == ["R002"]


def test_r002_order_insensitive_consumers_are_clean():
    src = """
        def stats(roots):
            seen = set(roots)
            return len(seen), sum(seen), max(seen), sorted(seen)
    """
    res = run_rule("kernels/example.py", src, only=["R002"])
    assert rule_ids(res) == []


def test_r002_scope_is_lockstep_packages_only():
    res = run_rule("analysis/example.py", R002_BAD, only=["R002"])
    assert rule_ids(res) == []


def test_r002_suppression():
    src = """
        def labels(roots):
            seen = set(roots)
            return [v for v in seen]  # repro-lint: disable=R002
    """
    res = run_rule("kernels/example.py", src, only=["R002"])
    assert rule_ids(res) == []
    assert res.suppressed == 1


# ----------------------------------------------------------------------
# R003: raw RNG
# ----------------------------------------------------------------------
R003_BAD = """
    import random

    def shuffle_ids(ids):
        random.shuffle(ids)
        return ids
"""

R003_GOOD = """
    import random

    def shuffle_ids(ids, seed):
        rng = random.Random(seed)
        rng.shuffle(ids)
        return ids
"""


def test_r003_flags_module_level_random():
    res = run_rule("core/example.py", R003_BAD, only=["R003"])
    assert rule_ids(res) == ["R003"]


def test_r003_accepts_seeded_instance():
    res = run_rule("core/example.py", R003_GOOD, only=["R003"])
    assert rule_ids(res) == []


def test_r003_flags_np_random():
    src = """
        import numpy as np

        def noise(n):
            return np.random.rand(n)
    """
    res = run_rule("kernels/example.py", src, only=["R003"])
    assert rule_ids(res) == ["R003"]


def test_r003_rng_owner_files_are_exempt():
    res = run_rule("kernels/rng.py", R003_BAD, only=["R003"])
    assert rule_ids(res) == []


def test_r003_suppression():
    src = """
        import random

        def shuffle_ids(ids):
            random.shuffle(ids)  # repro-lint: disable=R003
            return ids
    """
    res = run_rule("core/example.py", src, only=["R003"])
    assert rule_ids(res) == []
    assert res.suppressed == 1


# ----------------------------------------------------------------------
# R004: unregistered kernel / dropped backend forwarding
# ----------------------------------------------------------------------
R004_REGISTRY = """
    from . import example

    def register_kernel(operation, backend, fn):
        pass

    register_kernel("fast_scan", "numpy", example.fast_scan)
"""


def _lint_kernel_pair(kernel_src: str):
    res = lint_sources(
        [
            ("<test>/kernels/example.py", "kernels/example.py", textwrap.dedent(kernel_src)),
            ("<test>/kernels/__init__.py", "kernels/__init__.py", textwrap.dedent(R004_REGISTRY)),
        ],
        only=["R004"],
    )
    assert not res.parse_errors, res.parse_errors
    return res


def test_r004_flags_unregistered_public_kernel():
    src = """
        def fast_scan(xs):
            return xs

        def fast_pack(xs):
            return xs
    """
    res = _lint_kernel_pair(src)
    assert rule_ids(res) == ["R004"]
    assert "fast_pack" in res.findings[0].message


def test_r004_accepts_registered_and_private_kernels():
    src = """
        def fast_scan(xs):
            return _helper(xs)

        def _helper(xs):
            return xs
    """
    res = _lint_kernel_pair(src)
    assert rule_ids(res) == []


def test_r004_flags_dropped_backend_forwarding():
    src = """
        def helper(g, kernel_backend=None):
            return g

        def entry(g, kernel_backend=None):
            return helper(g)
    """
    res = run_rule("core/example.py", src, only=["R004"])
    assert rule_ids(res) == ["R004"]
    assert "kernel_backend" in res.findings[0].message


def test_r004_accepts_forwarded_backend():
    src = """
        def helper(g, kernel_backend=None):
            return g

        def entry(g, kernel_backend=None):
            return helper(g, kernel_backend=kernel_backend)
    """
    res = run_rule("core/example.py", src, only=["R004"])
    assert rule_ids(res) == []


def test_r004_suppression():
    src = """
        def fast_scan(xs):
            return xs

        def fast_pack(xs):  # repro-lint: disable=R004
            return xs
    """
    res = _lint_kernel_pair(src)
    assert rule_ids(res) == []
    assert res.suppressed == 1


# ----------------------------------------------------------------------
# R005: float ordering in lockstep code
# ----------------------------------------------------------------------
R005_BAD = """
    def pick(weight_a: float, weight_b: float) -> int:
        if weight_a < weight_b:
            return 0
        return 1
"""

R005_GOOD = """
    def pick(count_a: int, count_b: int) -> int:
        if count_a < count_b:
            return 0
        return 1
"""


def test_r005_flags_float_ordering_compare():
    res = run_rule("core/example.py", R005_BAD, only=["R005"])
    assert rule_ids(res) == ["R005"]


def test_r005_accepts_int_ordering_compare():
    res = run_rule("core/example.py", R005_GOOD, only=["R005"])
    assert rule_ids(res) == []


def test_r005_flags_float_min_key():
    src = """
        def best(vertices, score: dict[int, float]) -> int:
            return min(vertices, key=lambda v: score[v])
    """
    res = run_rule("core/example.py", src, only=["R005"])
    assert rule_ids(res) == ["R005"]


def test_r005_scope_is_lockstep_packages_only():
    res = run_rule("analysis/example.py", R005_BAD, only=["R005"])
    assert rule_ids(res) == []


def test_r005_suppression():
    src = """
        def pick(weight_a: float, weight_b: float) -> int:
            if weight_a < weight_b:  # repro-lint: disable=R005
                return 0
            return 1
    """
    res = run_rule("core/example.py", src, only=["R005"])
    assert rule_ids(res) == []
    assert res.suppressed == 1


# ----------------------------------------------------------------------
# R006: observability calls in kernel loops
# ----------------------------------------------------------------------
R006_BAD = """
    from ..obs.runtime import metrics as _obs_metrics

    def scatter_rounds(t, live):
        while live:
            _obs_metrics().counter("kernel.rounds").inc()
            live = live[1:]
"""

R006_GOOD = """
    from ..obs.runtime import metrics as _obs_metrics

    def scatter_rounds(t, live):
        rounds = 0
        while live:
            rounds += 1
            live = live[1:]
        _obs_metrics().counter("kernel.rounds").inc(rounds)
"""


def test_r006_flags_obs_call_in_kernel_loop():
    res = run_rule("kernels/example.py", R006_BAD, only=["R006"])
    # both the alias-rooted call and the .inc/.counter method calls on
    # its result anchor at the same loop; at least one finding is R006
    assert rule_ids(res) and set(rule_ids(res)) == {"R006"}


def test_r006_accepts_aggregate_recording_after_loop():
    res = run_rule("kernels/example.py", R006_GOOD, only=["R006"])
    assert rule_ids(res) == []


def test_r006_flags_instrument_method_in_for_loop():
    src = """
        def fold(ctr, hist, items):
            for x in items:
                hist.observe(x)
    """
    res = run_rule("kernels/example.py", src, only=["R006"])
    assert rule_ids(res) == ["R006"]


def test_r006_accepts_constant_sized_loop():
    src = """
        from ..obs import runtime as obs

        def probe(t):
            for name in ("a", "b"):
                obs.metrics().counter(name).inc()
    """
    res = run_rule("kernels/example.py", src, only=["R006"])
    assert rule_ids(res) == []


def test_r006_scope_excludes_structures():
    # the same spelling is the sanctioned idiom in structures/ (bound
    # instruments), so the rule must not fire there
    res = run_rule("structures/example.py", R006_BAD, only=["R006"])
    assert rule_ids(res) == []


def test_r006_covers_service_package():
    # the service loop is hot-path scope: an instrument bump per
    # drained *request* (unbounded) is exactly the regression the
    # zero-overhead contract forbids
    src = """
        def pump(h_latency, batch):
            for pending in batch:
                h_latency.observe(pending.age)
    """
    res = run_rule("service/example.py", src, only=["R006"])
    assert rule_ids(res) == ["R006"]


def test_r006_covers_pram_executor_file_only():
    # pram/executor.py (the pool dispatch path) is in scope; the rest
    # of pram/ (tracker-side bookkeeping) is not
    src = """
        def drain(rec, conns):
            for conn in conns:
                rec.event("pool.reply")
    """
    res = run_rule("pram/executor.py", src, only=["R006"])
    assert rule_ids(res) == ["R006"]
    res = run_rule("pram/tracker.py", src, only=["R006"])
    assert rule_ids(res) == []


def test_r006_flags_flight_recorder_verbs():
    src = """
        def watch(rec, replies):
            for r in replies:
                rec.anomaly("worker_fault", worker=r)
    """
    res = run_rule("service/example.py", src, only=["R006"])
    assert rule_ids(res) == ["R006"]


def test_r006_suppression():
    src = """
        from ..obs import runtime as obs

        def probe(t, items):
            for x in items:
                obs.span("kernel.item")  # repro-lint: disable=R006
    """
    res = run_rule("kernels/example.py", src, only=["R006"])
    assert rule_ids(res) == []
    assert res.suppressed == 1


def test_r006_clean_on_real_kernels():
    """The shipped kernels must satisfy the rule without baseline help."""
    res = lint_paths([SRC_REPRO / "kernels"], only=["R006"])
    assert res.findings == []


# ----------------------------------------------------------------------
# suppression machinery
# ----------------------------------------------------------------------
def test_disable_file_suppresses_whole_file():
    src = """
        # repro-lint: disable-file=R001
        def a(g):
            for v in g.vertices:
                pass

        def b(g):
            for v in g.vertices:
                pass
    """
    res = run_rule("core/example.py", src, only=["R001"])
    assert rule_ids(res) == []
    assert res.suppressed == 2


def test_disable_all_keyword():
    src = """
        import random

        def f(g):
            for v in g.vertices:  # repro-lint: disable=all
                random.shuffle(v)  # repro-lint: disable=all
    """
    res = run_rule("core/example.py", src)
    assert rule_ids(res) == []
    assert res.suppressed >= 2


def test_suppression_is_rule_specific():
    src = """
        def labels(roots):
            seen = set(roots)
            return [v for v in seen]  # repro-lint: disable=R001
    """
    res = run_rule("core/example.py", src, only=["R002"])
    assert rule_ids(res) == ["R002"]


# ----------------------------------------------------------------------
# baseline: the checked-in file exactly matches the tree
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def full_run():
    return lint_paths([SRC_REPRO])


def test_tree_has_zero_unbaselined_findings(full_run):
    match = Baseline.load(BASELINE).match(full_run.findings)
    assert not full_run.parse_errors
    new = [f.render() for f in match.new]
    assert new == [], f"unbaselined findings:\n" + "\n".join(new)


def test_baseline_has_no_stale_entries(full_run):
    match = Baseline.load(BASELINE).match(full_run.findings)
    assert match.stale == [], (
        "stale baseline entries (fixed violations still grandfathered); "
        "regenerate with --write-baseline"
    )


def test_every_baseline_entry_is_justified():
    data = json.loads(BASELINE.read_text())
    unjustified = [
        (e["rule"], e["path"]) for e in data["findings"] if not e.get("note")
    ]
    assert unjustified == []


def test_baseline_roundtrip(tmp_path):
    bl = Baseline.load(BASELINE)
    out = tmp_path / "bl.json"
    bl.dump(out)
    again = Baseline.load(out)
    assert again.counts == bl.counts
    assert again.notes == bl.notes


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def run_cli(*args: str, cwd: Path = REPO):
    env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_cli_clean_against_baseline():
    proc = run_cli("src/repro", "--baseline", "lint-baseline.json", "--stats")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "repro-lint stats:" in proc.stdout


def test_cli_fails_on_injected_violation(tmp_path):
    bad = tmp_path / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(textwrap.dedent(R001_BAD))
    proc = run_cli(
        "src/repro", str(bad), "--baseline", "lint-baseline.json"
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "R001" in proc.stdout


def test_cli_rejects_unknown_rule():
    proc = run_cli("src/repro", "--rules", "R999")
    assert proc.returncode == 2
    assert "unknown rule" in proc.stderr


def test_cli_json_format(tmp_path):
    bad = tmp_path / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(textwrap.dedent(R003_BAD))
    proc = run_cli(str(bad), "--format", "json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["files_scanned"] == 1
    assert [f["rule"] for f in payload["findings"]] == ["R003"]


def test_cli_smoke_under_ten_seconds():
    start = time.monotonic()
    proc = run_cli("src/repro", "--baseline", "lint-baseline.json")
    elapsed = time.monotonic() - start
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert elapsed < 10.0, f"lint took {elapsed:.1f}s (budget 10s)"


def test_all_rules_have_distinct_ids_and_hints():
    ids = [cls.id for cls in ALL_RULES]
    assert len(ids) == len(set(ids)) == 6
    for cls in ALL_RULES:
        rule = cls()
        assert rule.hint, rule.id
        assert rule.severity in ("error", "warning")
