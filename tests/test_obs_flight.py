"""Tests for the live telemetry plane primitives.

Covers request-scoped context propagation (:mod:`repro.obs.context`),
the thread-safe ring tracer, the flight recorder's bounded rings /
anomaly dumps / Perfetto bundles (:mod:`repro.obs.flight`), and the
OpenMetrics text renderer (:mod:`repro.obs.openmetrics`).  The
service-level integration — a slow request producing a dump whose span
tree reconstructs the request end-to-end — lives in
``test_service_telemetry.py``.
"""

import json
import threading

import pytest

from repro.obs import (
    FlightRecorder,
    Metrics,
    NULL_RECORDER,
    NullFlightRecorder,
    OpenMetricsDoc,
    Tracer,
    bound_call,
    current_request_id,
    install_recorder,
    recorder,
    render_openmetrics,
    request_scope,
    sanitize_name,
    to_trace_events,
    validate_trace_events,
)


# ----------------------------------------------------------------------
# request-scoped context
# ----------------------------------------------------------------------


class TestContext:
    def test_default_is_none(self):
        assert current_request_id() is None

    def test_scope_sets_and_restores(self):
        with request_scope("r1"):
            assert current_request_id() == "r1"
            with request_scope("r2"):
                assert current_request_id() == "r2"
            assert current_request_id() == "r1"
        assert current_request_id() is None

    def test_scope_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with request_scope("r1"):
                raise RuntimeError("boom")
        assert current_request_id() is None

    def test_bound_call_rebinds_on_another_thread(self):
        # the service's executor threads don't inherit the event loop's
        # contextvars; bound_call must carry the id across explicitly
        seen = {}

        def probe(tag):
            seen[tag] = current_request_id()
            return tag

        job = bound_call("req-9", probe, "worker")
        t = threading.Thread(target=job)
        t.start()
        t.join()
        assert seen == {"worker": "req-9"}
        assert current_request_id() is None

    def test_bound_call_returns_value(self):
        assert bound_call("x", lambda a, b=2: a + b, 1)() == 3


# ----------------------------------------------------------------------
# thread-safe ring tracer
# ----------------------------------------------------------------------


class TestTracerThreading:
    def test_single_thread_spans_keep_tid_one(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                pass
        assert [s.tid for s in tr.spans] == [1, 1]

    def test_threads_get_stable_distinct_tids(self):
        tr = Tracer()
        barrier = threading.Barrier(2)

        def work(name):
            barrier.wait()
            for _ in range(3):
                with tr.span(name):
                    pass

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert {s.tid for s in tr.spans} == {1, 2}
        # every span of one logical thread carries one tid
        by_name = {}
        for s in tr.spans:
            by_name.setdefault(s.name, set()).add(s.tid)
        assert all(len(v) == 1 for v in by_name.values())

    def test_nesting_is_per_thread(self):
        tr = Tracer()
        start = threading.Barrier(2)

        def work(name):
            start.wait()
            with tr.span(name + ".outer"):
                with tr.span(name + ".inner"):
                    pass

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = to_trace_events(tr)
        assert validate_trace_events(events) == []

    def test_open_spans_snapshot_across_threads(self):
        tr = Tracer()
        ready = threading.Event()
        release = threading.Event()

        def work():
            with tr.span("worker.outer"):
                ready.set()
                release.wait()

        t = threading.Thread(target=work)
        t.start()
        ready.wait()
        try:
            with tr.span("main.open"):
                names = {s.name for s in tr.open_spans()}
        finally:
            release.set()
            t.join()
        assert {"worker.outer", "main.open"} <= names
        assert tr.open_spans() == []

    def test_ring_limit_evicts_oldest(self):
        tr = Tracer(limit=4)
        for i in range(10):
            with tr.span(f"s{i}"):
                pass
        assert len(tr.spans) == 4
        assert [s.name for s in tr.spans] == ["s6", "s7", "s8", "s9"]

    def test_span_stamps_request_id_from_context(self):
        tr = Tracer()
        with request_scope("req-1"):
            with tr.span("a"):
                pass
        with tr.span("b"):
            pass
        spans = list(tr.spans)
        assert spans[0].attrs["request_id"] == "req-1"
        assert "request_id" not in spans[1].attrs

    def test_explicit_request_id_attr_wins(self):
        tr = Tracer()
        with request_scope("ctx"):
            with tr.span("a", request_id="explicit"):
                pass
        assert list(tr.spans)[0].attrs["request_id"] == "explicit"


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------


def make_recorder(tmp_path=None, **kw):
    kw.setdefault("capacity", 64)
    if tmp_path is not None:
        kw.setdefault("dump_dir", str(tmp_path))
    return FlightRecorder(**kw)


class TestFlightRecorder:
    def test_events_capture_request_id(self):
        rec = make_recorder()
        with request_scope("r7"):
            rec.event("service.request", op="dfs", ok=True)
        rec.event("idle")
        evs = rec.events()
        assert evs[0]["name"] == "service.request"
        assert evs[0]["request_id"] == "r7"
        assert evs[0]["attrs"] == {"op": "dfs", "ok": True}
        assert "request_id" not in evs[1]

    def test_event_ring_is_bounded(self):
        rec = FlightRecorder(capacity=8)
        for i in range(50):
            rec.event(f"e{i}")
        evs = rec.events()
        assert len(evs) == 8
        assert evs[0]["name"] == "e42" and evs[-1]["name"] == "e49"

    def test_anomaly_counts_without_dump_dir(self):
        rec = make_recorder()
        assert rec.anomaly("slow_request", latency_ms=12.5) is None
        assert rec.anomaly("slow_request") is None
        assert rec.anomaly("worker_fault") is None
        assert rec.anomalies == {"slow_request": 2, "worker_fault": 1}
        assert rec.dumps == []
        names = [e["name"] for e in rec.events()]
        assert names.count("anomaly.slow_request") == 2

    def test_anomaly_dump_is_valid_perfetto_bundle(self, tmp_path):
        rec = make_recorder(tmp_path)
        with rec.tracer.span("service.compute", graph="g"):
            pass
        with request_scope("r1"):
            rec.event("service.request", ok=False)
        path = rec.anomaly("slow_request", latency_ms=99.0)
        assert path is not None
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert validate_trace_events(doc["traceEvents"]) == []
        assert doc["otherData"]["reason"] == "slow_request"
        assert doc["otherData"]["anomalies"] == {"slow_request": 1}
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"service.compute", "service.request",
                "anomaly.slow_request"} <= names
        inst = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert any(e["args"].get("request_id") == "r1" for e in inst)

    def test_dump_includes_in_flight_spans(self, tmp_path):
        # the anomaly fires *inside* the span that explains it; the
        # dump must synthesize that still-open span, not omit it
        rec = make_recorder(tmp_path)
        with rec.tracer.span("service.batch", requests=["r1"]):
            path = rec.anomaly("slow_request")
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert validate_trace_events(doc["traceEvents"]) == []
        batch = [
            e for e in doc["traceEvents"] if e["name"] == "service.batch"
        ]
        assert batch and batch[0]["ph"] == "X"
        assert batch[0]["args"]["in_flight"] is True
        assert batch[0]["args"]["requests"] == ["r1"]

    def test_dump_cap_is_enforced(self, tmp_path):
        rec = make_recorder(tmp_path, max_dumps=3)
        paths = [rec.anomaly("flap", i=i) for i in range(6)]
        written = [p for p in paths if p is not None]
        assert len(written) == 3
        # the counter keeps counting past the cap
        assert rec.anomalies == {"flap": 6}
        assert len(list(tmp_path.iterdir())) == 3

    def test_joining_an_external_tracer_and_registry(self):
        tr = Tracer(limit=32)
        m = Metrics()
        rec = FlightRecorder(capacity=32, tracer=tr, metrics=m)
        assert rec.tracer is tr and rec.metrics is m

    def test_stats_shape(self):
        rec = make_recorder()
        rec.event("x")
        rec.anomaly("y")
        s = rec.stats()
        assert s["capacity"] == 64
        assert s["events"] == 2  # the anomaly records itself as an event
        assert s["anomalies"] == {"y": 1}
        assert s["dumps"] == []

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=1)

    def test_install_and_restore(self):
        rec = make_recorder()
        assert recorder() is NULL_RECORDER
        prev = install_recorder(rec)
        try:
            assert prev is NULL_RECORDER
            assert recorder() is rec
        finally:
            install_recorder(prev)
        assert recorder() is NULL_RECORDER

    def test_null_recorder_is_inert(self, tmp_path):
        n = NullFlightRecorder()
        n.event("x", a=1)
        assert n.anomaly("y") is None
        assert n.dump() is None
        assert n.events() == [] and n.stats() == {}
        assert list(tmp_path.iterdir()) == []


# ----------------------------------------------------------------------
# OpenMetrics renderer
# ----------------------------------------------------------------------


class TestOpenMetrics:
    def test_sanitize_name(self):
        assert sanitize_name("service.latency_ms", "repro") == (
            "repro_service_latency_ms"
        )
        assert sanitize_name("a-b c") == "a_b_c"
        assert sanitize_name("9lives") == "_9lives"

    def test_counter_gauge_info_rendering(self):
        doc = OpenMetricsDoc(prefix="t")
        doc.counter("reqs", 3)
        doc.gauge("depth", 2)
        doc.info("build", {"sha": "abc", "q": 'x"y'})
        text = doc.render()
        assert "# TYPE t_reqs counter\nt_reqs_total 3" in text
        assert "# TYPE t_depth gauge\nt_depth 2" in text
        assert 't_build_info{q="x\\"y",sha="abc"} 1' in text
        assert text.endswith("# EOF\n")

    def test_summary_rendering_with_quantiles(self):
        doc = OpenMetricsDoc(prefix="t")
        doc.summary("lat", 4, 10.0, {0.5: 2.0, 0.99: 5.0})
        text = doc.render()
        assert "t_lat_count 4" in text
        assert "t_lat_sum 10.0" in text
        assert 't_lat{quantile="0.5"} 2.0' in text
        assert 't_lat{quantile="0.99"} 5.0' in text

    def test_labelled_samples_accumulate_in_one_family(self):
        doc = OpenMetricsDoc(prefix="t")
        doc.gauge("graph.n", 5, {"graph": "a"})
        doc.gauge("graph.n", 9, {"graph": "b"})
        text = doc.render()
        assert text.count("# TYPE t_graph_n gauge") == 1
        assert 't_graph_n{graph="a"} 5' in text
        assert 't_graph_n{graph="b"} 9' in text

    def test_kind_collision_raises(self):
        doc = OpenMetricsDoc()
        doc.counter("x", 1)
        with pytest.raises(ValueError):
            doc.gauge("x", 2)

    def test_from_metrics_covers_every_instrument_kind(self):
        m = Metrics()
        m.counter("hits").inc(3)
        m.gauge("depth").set(7)
        h = m.histogram("batch")
        h.observe(2)
        h.observe(4)
        r = m.reservoir("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            r.observe(v)
        text = render_openmetrics(m, prefix="t")
        assert "t_hits_total 3" in text
        assert "t_depth 7" in text
        assert "t_batch_count 2" in text and "t_batch_sum 6" in text
        assert "t_batch_max 4" in text and "t_batch_min 2" in text
        assert 't_lat{quantile="0.99"} 4.0' in text
        assert "t_lat_count 4" in text

    def test_render_is_deterministic(self):
        def build():
            m = Metrics()
            m.counter("b").inc()
            m.counter("a").inc(2)
            return render_openmetrics(
                m, counters={"z": 1}, gauges={"y": 2}, prefix="t"
            )

        assert build() == build()
