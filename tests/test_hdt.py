"""Tests for the HDT batch-dynamic connectivity structure (Lemma 6.1)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph
from repro.graph import generators as G
from repro.pram import Tracker
from repro.structures.hdt import HDTConnectivity


def oracle_labels(n, live_edges):
    g = Graph(n, live_edges)
    comps = g.connected_components_seq()
    lab = [0] * n
    for comp in comps:
        mn = min(comp)
        for v in comp:
            lab[v] = mn
    return lab


def hdt_matches_oracle(hdt, n, live_edges):
    lab = oracle_labels(n, live_edges)
    for v in range(n):
        if hdt.component_rep(v) != lab[v]:
            return False
    return True


class TestInit:
    def test_initial_connectivity(self):
        g = G.gnm_random_connected_graph(30, 60, seed=1)
        hdt = HDTConnectivity(g)
        assert hdt.connected(0, 29)
        assert hdt.component_size(0) == 30

    def test_initial_disconnected(self):
        g = Graph(5, [(0, 1), (2, 3)])
        hdt = HDTConnectivity(g)
        assert hdt.connected(0, 1)
        assert not hdt.connected(1, 2)
        assert hdt.component_size(4) == 1

    def test_initial_invariants(self):
        g = G.gnm_random_connected_graph(24, 60, seed=2)
        hdt = HDTConnectivity(g)
        hdt.check_invariants()

    def test_spanning_forest_size(self):
        g = G.gnm_random_connected_graph(20, 50, seed=3)
        hdt = HDTConnectivity(g)
        assert len(hdt.spanning_forest_edges()) == 19


class TestSingleDeletions:
    def test_delete_nontree_keeps_connectivity(self):
        g = G.cycle_graph(6)
        hdt = HDTConnectivity(g)
        # one cycle edge is non-tree; find it
        tree = set(hdt.spanning_forest_edges())
        nontree = [e for e in g.edges if e not in tree]
        assert len(nontree) == 1
        eid = g.edges.index(nontree[0])
        changes = hdt.delete_edge(eid)
        assert changes == []
        assert hdt.connected(0, 3)

    def test_delete_tree_edge_with_replacement(self):
        g = G.cycle_graph(8)
        hdt = HDTConnectivity(g)
        tree_pairs = hdt.spanning_forest_edges()
        eid = g.edges.index(tuple(sorted(tree_pairs[0])))
        changes = hdt.delete_edge(eid)
        kinds = [c.kind for c in changes]
        assert kinds == ["cut", "link"]
        assert hdt.connected(0, 4)

    def test_delete_bridge_splits(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        hdt = HDTConnectivity(g)
        changes = hdt.delete_edge(1)  # edge (1,2)
        assert [c.kind for c in changes] == ["cut"]
        assert not hdt.connected(0, 3)
        assert hdt.component_size(0) == 2

    def test_double_delete_rejected(self):
        g = Graph(2, [(0, 1)])
        hdt = HDTConnectivity(g)
        hdt.delete_edge(0)
        with pytest.raises(ValueError):
            hdt.delete_edge(0)

    def test_delete_all_edges_one_by_one(self):
        g = G.gnm_random_connected_graph(16, 40, seed=4)
        hdt = HDTConnectivity(g)
        live = list(g.edges)
        order = list(range(g.m))
        random.Random(9).shuffle(order)
        alive = set(range(g.m))
        for eid in order:
            hdt.delete_edge(eid)
            alive.discard(eid)
            live_edges = [g.edges[e] for e in sorted(alive)]
            assert hdt_matches_oracle(hdt, g.n, live_edges)
        assert all(hdt.component_size(v) == 1 for v in range(g.n))


class TestBatchDeletions:
    def test_batch_mixed(self):
        g = G.gnm_random_connected_graph(20, 50, seed=5)
        hdt = HDTConnectivity(g)
        batch = [0, 5, 10, 15, 20]
        hdt.batch_delete(batch)
        alive = [g.edges[e] for e in range(g.m) if e not in set(batch)]
        assert hdt_matches_oracle(hdt, g.n, alive)
        hdt.check_invariants()

    def test_batch_random_rounds(self):
        rng = random.Random(6)
        g = G.gnm_random_connected_graph(30, 90, seed=6)
        hdt = HDTConnectivity(g)
        alive = set(range(g.m))
        while alive:
            k = min(len(alive), rng.randrange(1, 8))
            batch = rng.sample(sorted(alive), k)
            hdt.batch_delete(batch)
            alive -= set(batch)
            live_edges = [g.edges[e] for e in sorted(alive)]
            assert hdt_matches_oracle(hdt, g.n, live_edges)
        hdt.check_invariants()

    def test_changes_mirror_forest(self):
        # applying the emitted cut/link changes to a copy of the initial
        # forest must reproduce the final forest exactly
        g = G.gnm_random_connected_graph(25, 70, seed=7)
        hdt = HDTConnectivity(g)
        forest = set(hdt.spanning_forest_edges())
        rng = random.Random(8)
        alive = set(range(g.m))
        for _ in range(6):
            batch = rng.sample(sorted(alive), min(5, len(alive)))
            changes = hdt.batch_delete(batch)
            alive -= set(batch)
            for c in changes:
                key = (c.u, c.v) if c.u < c.v else (c.v, c.u)
                if c.kind == "cut":
                    forest.discard(key)
                else:
                    assert key not in forest
                    forest.add(key)
            assert forest == set(
                tuple(sorted(p)) for p in hdt.spanning_forest_edges()
            )

    @given(st.integers(4, 24), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_random_batches(self, n, seed):
        rng = random.Random(seed)
        m = min(3 * n, n * (n - 1) // 2)
        g = G.gnm_random_graph(n, m, seed=seed)
        hdt = HDTConnectivity(g)
        alive = set(range(g.m))
        for _ in range(4):
            if not alive:
                break
            batch = rng.sample(sorted(alive), min(len(alive), 1 + rng.randrange(6)))
            hdt.batch_delete(batch)
            alive -= set(batch)
            live_edges = [g.edges[e] for e in sorted(alive)]
            assert hdt_matches_oracle(hdt, g.n, live_edges)


class TestVertexDeletion:
    def test_delete_vertex_removes_all_incident(self):
        g = G.star_graph(8)
        hdt = HDTConnectivity(g)
        hdt.delete_vertex(0)
        for v in range(1, 8):
            assert hdt.component_size(v) == 1

    def test_delete_path_interior(self):
        g = G.path_graph(5)
        hdt = HDTConnectivity(g)
        hdt.delete_vertex(2)
        assert hdt.connected(0, 1)
        assert hdt.connected(3, 4)
        assert not hdt.connected(1, 3)

    def test_delete_vertex_in_dense_graph_keeps_rest_connected(self):
        g = G.complete_graph(8)
        hdt = HDTConnectivity(g)
        hdt.delete_vertex(3)
        for v in range(8):
            if v == 3:
                assert hdt.component_size(v) == 1
            else:
                assert hdt.component_size(v) == 7


class TestInsertions:
    def test_insert_reconnects(self):
        g = Graph(4, [(0, 1), (2, 3)])
        hdt = HDTConnectivity(g)
        eid = hdt.insert_edge(1, 2)
        assert hdt.connected(0, 3)
        hdt.delete_edge(eid)
        assert not hdt.connected(0, 3)

    def test_insert_nontree_then_acts_as_replacement(self):
        g = G.path_graph(4)
        hdt = HDTConnectivity(g)
        extra = hdt.insert_edge(0, 3)  # creates a cycle -> non-tree
        hdt.delete_edge(1)  # tree edge (1,2)
        assert hdt.connected(0, 3)  # replaced via the inserted edge
        assert hdt.connected(1, 2)

    def test_insert_self_loop_rejected(self):
        g = Graph(2, [])
        hdt = HDTConnectivity(g)
        with pytest.raises(ValueError):
            hdt.insert_edge(1, 1)


class TestAmortizedWork:
    def test_amortized_work_per_deletion_polylog(self):
        # Lemma 6.1: O(log^2 n) expected amortized work per edge deletion.
        g = G.gnm_random_connected_graph(128, 512, seed=11)
        t = Tracker()
        hdt = HDTConnectivity(g, tracker=t)
        w0 = t.work
        rng = random.Random(12)
        order = list(range(g.m))
        rng.shuffle(order)
        for eid in order:
            hdt.delete_edge(eid)
        per_deletion = (t.work - w0) / g.m
        logn = g.n.bit_length()
        assert per_deletion <= 40 * logn * logn

    def test_batch_groups_give_parallel_span(self):
        # two far-apart components -> their searches are parallel branches
        edges = [(i, i + 1) for i in range(0, 9)] + [
            (10 + i, 11 + i) for i in range(0, 9)
        ]
        g = Graph(20, edges)
        t = Tracker()
        hdt = HDTConnectivity(g, tracker=t)
        t.reset()
        # delete one bridge in each component in one batch
        hdt.batch_delete([4, 13])
        span_batch = t.span
        t2 = Tracker()
        hdt2 = HDTConnectivity(Graph(20, edges), tracker=t2)
        t2.reset()
        hdt2.delete_edge(4)
        span_single = t2.span
        # batch of 2 independent deletions costs roughly one deletion's span
        assert span_batch <= 3 * span_single + 50


class TestBatchInsert:
    def test_batch_reconnects(self):
        g = Graph(6, [])
        hdt = HDTConnectivity(g)
        hdt.batch_insert([(0, 1), (1, 2), (3, 4)])
        assert hdt.connected(0, 2)
        assert hdt.connected(3, 4)
        assert not hdt.connected(2, 3)
        hdt.check_invariants()

    def test_batch_with_redundant_edges(self):
        g = Graph(4, [])
        hdt = HDTConnectivity(g)
        eids = hdt.batch_insert([(0, 1), (1, 2), (0, 2), (2, 3), (0, 3)])
        assert hdt.connected(0, 3)
        # exactly 3 tree edges for one 4-vertex component
        assert sum(1 for e in eids if hdt.is_tree[e]) == 3
        hdt.check_invariants()

    def test_batch_insert_then_delete_all(self):
        g = Graph(10, [])
        hdt = HDTConnectivity(g)
        pairs = [(i, j) for i in range(10) for j in range(i + 1, 10) if (i + j) % 3]
        eids = hdt.batch_insert(pairs)
        hdt.check_invariants()
        hdt.batch_delete(eids)
        assert all(hdt.component_size(v) == 1 for v in range(10))
        hdt.check_invariants()

    def test_batch_matches_oracle(self):
        rng = random.Random(77)
        g = Graph(20, [])
        hdt = HDTConnectivity(g)
        live = []
        for _ in range(6):
            batch = []
            seen = {hdt.endpoints[e] for e in live}
            while len(batch) < 5:
                u, v = rng.randrange(20), rng.randrange(20)
                key = (min(u, v), max(u, v))
                if u != v and key not in seen and key not in set(batch):
                    batch.append(key)
            eids = hdt.batch_insert(batch)
            live.extend(eids)
            # spot-check connectivity against the oracle
            live_pairs = [hdt.endpoints[e] for e in live]
            assert hdt_matches_oracle(hdt, 20, live_pairs)
            if live and rng.random() < 0.7:
                kill = rng.sample(live, min(3, len(live)))
                hdt.batch_delete(kill)
                live = [e for e in live if e not in set(kill)]
                live_pairs = [hdt.endpoints[e] for e in live]
                assert hdt_matches_oracle(hdt, 20, live_pairs)
        hdt.check_invariants()

    def test_batch_self_loop_rejected(self):
        hdt = HDTConnectivity(Graph(3, []))
        with pytest.raises(ValueError):
            hdt.batch_insert([(1, 1)])

    def test_empty_batch(self):
        hdt = HDTConnectivity(Graph(2, []))
        assert hdt.batch_insert([]) == []


class TestMisc:
    def test_edge_alive_flag(self):
        g = Graph(3, [(0, 1), (1, 2)])
        hdt = HDTConnectivity(g)
        assert hdt.edge_alive(0)
        hdt.delete_edge(0)
        assert not hdt.edge_alive(0)
        assert hdt.edge_alive(1)
