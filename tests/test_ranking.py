"""Tests for list ranking / prefix sums on linked lists (Lemma 2.4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.listrank.ranking import (
    anderson_miller_prefix_sums,
    prefix_sums_on_lists,
    sequential_prefix_sums,
    wyllie_prefix_sums,
)
from repro.pram import Tracker


def build_lists(sizes, values_rng=None):
    """Build disjoint lists; returns (vertices, prev_of, values dict)."""
    vertices = []
    prev_of = {}
    values = {}
    nxt_id = 0
    for size in sizes:
        prev = None
        for _ in range(size):
            v = nxt_id
            nxt_id += 1
            vertices.append(v)
            prev_of[v] = prev
            values[v] = values_rng.randint(-5, 9) if values_rng else 1
            prev = v
    return vertices, prev_of, values


METHODS = {
    "wyllie": wyllie_prefix_sums,
    "anderson-miller": anderson_miller_prefix_sums,
}


@pytest.mark.parametrize("method", sorted(METHODS))
class TestBothMethods:
    def run(self, method, vertices, prev_of, values):
        t = Tracker()
        got = METHODS[method](t, vertices, prev_of, values.__getitem__)
        want = sequential_prefix_sums(vertices, prev_of, values.__getitem__)
        assert got == want
        return t

    def test_empty(self, method):
        t = Tracker()
        assert METHODS[method](t, [], {}, lambda v: 1) == {}

    def test_single_node(self, method):
        vs, prv, vals = build_lists([1])
        self.run(method, vs, prv, vals)

    def test_single_list_unit_values(self, method):
        vs, prv, vals = build_lists([17])
        t = Tracker()
        got = METHODS[method](t, vs, prv, vals.__getitem__)
        assert got == {v: v + 1 for v in vs}  # rank = position (1-based)

    def test_multiple_lists(self, method):
        vs, prv, vals = build_lists([5, 1, 9, 2])
        self.run(method, vs, prv, vals)

    def test_arbitrary_values(self, method):
        rng = random.Random(11)
        vs, prv, vals = build_lists([8, 13], values_rng=rng)
        self.run(method, vs, prv, vals)

    def test_suffix_restriction(self, method):
        # ranking only a suffix of a list treats the suffix start as a head
        vs, prv, vals = build_lists([10])
        suffix = vs[4:]
        t = Tracker()
        got = METHODS[method](t, suffix, prv, vals.__getitem__)
        assert got == {v: i + 1 for i, v in enumerate(suffix)}

    @given(
        st.lists(st.integers(1, 25), min_size=1, max_size=6),
        st.integers(0, 10**6),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_sequential(self, method, sizes, seed):
        rng = random.Random(seed)
        vs, prv, vals = build_lists(sizes, values_rng=rng)
        self.run(method, vs, prv, vals)


class TestCostBounds:
    def test_wyllie_span_logarithmic(self):
        vs, prv, vals = build_lists([256])
        t = Tracker()
        wyllie_prefix_sums(t, vs, prv, vals.__getitem__)
        logn = len(vs).bit_length()
        assert t.span <= 30 * logn * logn
        assert t.work <= 30 * len(vs) * logn  # O(n log n)

    def test_anderson_miller_work_linear(self):
        vs, prv, vals = build_lists([2048])
        t = Tracker()
        anderson_miller_prefix_sums(
            t, vs, prv, vals.__getitem__, rng=random.Random(5)
        )
        # expected O(n): generous constant, but clearly below n log n growth
        assert t.work <= 60 * len(vs)

    def test_anderson_miller_beats_wyllie_work_at_scale(self):
        vs, prv, vals = build_lists([4096])
        t1, t2 = Tracker(), Tracker()
        wyllie_prefix_sums(t1, vs, prv, vals.__getitem__)
        anderson_miller_prefix_sums(t2, vs, prv, vals.__getitem__, rng=random.Random(1))
        assert t2.work < t1.work


class TestDispatch:
    def test_prefix_sums_on_lists_dispatch(self):
        vs, prv, vals = build_lists([4])
        for method in ("wyllie", "anderson-miller"):
            t = Tracker()
            got = prefix_sums_on_lists(t, vs, prv, vals.__getitem__, method=method)
            assert got == {v: v + 1 for v in vs}

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            prefix_sums_on_lists(Tracker(), [], {}, lambda v: 1, method="bogus")
