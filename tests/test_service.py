"""Unit + integration tests for the DFS service tier.

Covers the protocol boundary (validation, canonical encoding, the tree
byte-identity surface), the incremental-maintenance layer
(:mod:`repro.service.dynamic`), the resident-graph cache semantics
(:mod:`repro.service.store`), the in-process batching core via
:class:`~repro.service.server.ServiceHandle`, and a full TCP round trip.
Concurrency-heavy and fault-injection scenarios live in
``test_service_load.py`` / ``test_service_faults.py``; the stateful
model-based battery is ``test_service_stateful.py``.
"""

import asyncio
import json
import random
import threading

import pytest

from repro.core.dfs import parallel_dfs
from repro.graph.generators import make_family
from repro.graph.graph import Graph
from repro.service import (
    DFSService,
    DynamicGraph,
    GraphStore,
    ProtocolError,
    ResidentGraph,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceHandle,
    ServiceServer,
    tree_bytes,
    tree_payload,
)
from repro.service import protocol


def run(coro):
    """Drive one coroutine to completion (no asyncio pytest plugin)."""
    return asyncio.run(coro)


def fresh_tree(n, edges, root, seed, kernel_backend="numpy", structure="flat"):
    """The byte-identity oracle: a fresh parallel_dfs on canonical state."""
    g = Graph(n, sorted({(min(u, v), max(u, v)) for u, v in edges}))
    res = parallel_dfs(
        g, root, rng=random.Random(seed),
        backend=structure, kernel_backend=kernel_backend,
    )
    return tree_payload(res.root, res.parent, res.depth)


def two_components(n_each=12, seed=0):
    """Disjoint union of two gnm instances (vertices 0..n-1, n..2n-1)."""
    a = make_family("gnm", n_each, seed=seed)
    b = make_family("gnm", n_each, seed=seed + 1)
    edges = list(a.edges) + [(u + a.n, v + a.n) for u, v in b.edges]
    return a.n + b.n, edges


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------


class TestProtocol:
    def test_encode_is_canonical(self):
        line = protocol.encode({"b": 1, "a": [2, 3]})
        assert line == b'{"a":[2,3],"b":1}\n'

    def test_decode_round_trip(self):
        req = protocol.decode_request(
            protocol.encode({"op": "dfs", "graph": "g", "root": 3, "id": 7})
        )
        assert req == {"op": "dfs", "graph": "g", "root": 3, "id": 7}

    @pytest.mark.parametrize(
        "line,code",
        [
            (b"", "empty_line"),
            (b"   \n", "empty_line"),
            (b"{not json\n", "bad_json"),
            (b'"a string"\n', "bad_request"),
            (b'{"op":"nope"}\n', "unknown_op"),
            (b'{"op":"dfs","graph":"g"}\n', "missing_field"),
            (b'{"op":"ping","bogus":1}\n', "unknown_field"),
            (b'{"op":"dfs","graph":3,"root":0}\n', "bad_field"),
            (b'{"op":"dfs","graph":"g","root":"x"}\n', "bad_field"),
            (b'{"op":"update","graph":"g","insert":[[0]]}\n', "bad_field"),
            (b'{"op":"update","graph":"g","insert":"0-1"}\n', "bad_field"),
            (b"\xff\xfe\n", "bad_encoding"),
        ],
    )
    def test_malformed_requests(self, line, code):
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(line)
        assert exc.value.code == code

    def test_oversized_line_rejected(self):
        blob = b'{"op":"ping","id":"' + b"x" * protocol.MAX_LINE + b'"}\n'
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(blob)
        assert exc.value.code == "line_too_long"

    def test_request_id_recovered_on_error(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(b'{"op":"nope","id":42}\n')
        assert exc.value.req_id == 42
        payload = protocol.error_payload(
            exc.value.code, exc.value.message, exc.value.req_id
        )
        assert payload["id"] == 42 and payload["ok"] is False

    def test_normalize_pairs_canonicalizes_order(self):
        assert protocol.normalize_pairs([[5, 2], [1, 3]], "insert") == [
            (2, 5), (1, 3),
        ]

    def test_tree_bytes_sorted_and_deterministic(self):
        t1 = tree_payload(0, {1: 0, 0: None}, {0: 0, 1: 1})
        t2 = tree_payload(0, {0: None, 1: 0}, {1: 1, 0: 0})
        assert tree_bytes(t1) == tree_bytes(t2)
        obj = json.loads(tree_bytes(t1))
        assert obj["root"] == 0 and obj["parent"]["1"] == 0


# ----------------------------------------------------------------------
# DynamicGraph: incremental maintenance
# ----------------------------------------------------------------------


class TestDynamicGraph:
    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicGraph(0)
        with pytest.raises(ValueError):
            DynamicGraph(4, rebuild_fraction=2.0)
        dyn = DynamicGraph(4, [(0, 1)])
        with pytest.raises(ValueError):
            dyn.apply_batch(insert=[(0, 9)])
        with pytest.raises(ValueError):
            dyn.apply_batch(insert=[(2, 2)])
        with pytest.raises(ValueError):
            dyn.apply_batch(insert=[(1, 2)], delete=[(2, 1)])
        # validation precedes mutation: state untouched after the raises
        assert dyn.mutations == 0 and dyn.edge_pairs() == [(0, 1)]
        dyn.check_invariants()

    def test_noop_and_idempotent_skips(self):
        dyn = DynamicGraph(4, [(0, 1)])
        rep = dyn.apply_batch(insert=[(0, 1)], delete=[(2, 3)])
        assert rep.mode == "noop" and rep.mutations == 0
        assert rep.skipped_inserts == 1 and rep.skipped_deleted == 1
        assert dyn.mutations == 0
        rep = dyn.apply_batch()
        assert rep.mode == "noop"

    def test_incremental_merge_and_split_stamps(self):
        n, edges = two_components()
        # rebuild_fraction=1.0: affected can never exceed n -> always
        # the incremental HDT path
        dyn = DynamicGraph(n, edges, rebuild_fraction=1.0)
        half = n // 2
        assert not dyn.connected(0, half)
        rep = dyn.apply_batch(insert=[(0, half)])
        assert rep.mode == "incremental"
        assert rep.affected == n and rep.touched_components == 2
        assert dyn.connected(0, half) and dyn.mutations == 1
        assert all(s == 1 for s in dyn.stamp)
        rep = dyn.apply_batch(delete=[(0, half)])
        assert rep.mode == "incremental" and rep.mutations == 2
        assert not dyn.connected(0, half)
        dyn.check_invariants()

    def test_untouched_component_keeps_stamp(self):
        n, edges = two_components()
        half = n // 2
        dyn = DynamicGraph(n, edges, rebuild_fraction=1.0)
        # mutate only inside the second component
        rep = dyn.apply_batch(insert=[(half, half + 2)])
        if rep.mode == "noop":  # the pair may already exist; pick another
            rep = dyn.apply_batch(insert=[(half, half + 3)])
        assert rep.mode == "incremental"
        assert dyn.stamp[0] == 0, "first component must keep its stamp"
        assert dyn.stamp[half] == dyn.mutations
        dyn.check_invariants()

    def test_rebuild_path_invalidates_globally(self):
        n, edges = two_components()
        dyn = DynamicGraph(n, edges, rebuild_fraction=0.0)
        rep = dyn.apply_batch(insert=[(0, n // 2)])
        assert rep.mode == "rebuild" and rep.affected == n
        assert all(s == dyn.mutations for s in dyn.stamp)
        assert dyn.maintenance["rebuild_batches"] == 1
        dyn.check_invariants()

    def test_snapshot_cached_per_mutation(self):
        dyn = DynamicGraph(5, [(0, 1), (1, 2)])
        g1 = dyn.snapshot()
        assert dyn.snapshot() is g1
        dyn.apply_batch(insert=[(3, 4)])
        g2 = dyn.snapshot()
        assert g2 is not g1 and g2.m == 3

    def test_matches_recompute_over_random_schedule(self):
        rng = random.Random(7)
        n = 20
        dyn = DynamicGraph(n, [(0, 1), (2, 3)], rebuild_fraction=0.5)
        model = {(0, 1), (2, 3)}
        for _ in range(30):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in model:
                dyn.apply_batch(delete=[key])
                model.discard(key)
            else:
                dyn.apply_batch(insert=[key])
                model.add(key)
            assert dyn.edge_pairs() == sorted(model)
        dyn.check_invariants()


# ----------------------------------------------------------------------
# ResidentGraph: cache semantics
# ----------------------------------------------------------------------


class TestResidentGraph:
    def test_miss_compute_install_hit(self):
        n, edges = two_components()
        rg = ResidentGraph("g", n, edges, kernel_backend="numpy")
        assert rg.lookup(0, 0) is None
        tree = rg.compute(0, 0)
        assert tree_bytes(tree) == tree_bytes(fresh_tree(n, edges, 0, 0))
        rg.install(0, 0, tree)
        assert rg.lookup(0, 0) is tree
        assert rg.hits == 1 and rg.misses == 1 and rg.hit_rate() == 0.5

    def test_update_elsewhere_preserves_cache(self):
        n, edges = two_components()
        half = n // 2
        rg = ResidentGraph(
            "g", n, edges, kernel_backend="numpy", rebuild_fraction=1.0
        )
        rg.install(0, 0, rg.compute(0, 0))
        # mutate the *other* component: stamp of root 0 unchanged
        rep = rg.dyn.apply_batch(delete=[rg.dyn.edge_pairs()[-1]])
        assert rep.mode == "incremental"
        cached = rg.lookup(0, 0)
        assert cached is not None, "untouched component must stay cached"
        # the cached tree is still byte-identical to a fresh recompute
        want = fresh_tree(n, rg.dyn.edge_pairs(), 0, 0)
        assert tree_bytes(cached) == tree_bytes(want)
        # mutate the root's own component: entry must go stale (deleting
        # an edge incident to the root always changes its component)
        incident = next(p for p in rg.dyn.edge_pairs() if 0 in p)
        rep = rg.dyn.apply_batch(delete=[incident])
        assert rep.mode == "incremental" and rep.affected > 0
        assert rg.lookup(0, 0) is None

    def test_lru_eviction(self):
        n, edges = two_components()
        rg = ResidentGraph("g", n, edges, kernel_backend="numpy", max_cache=3)
        for root in range(5):
            rg.install(root, 0, {"root": root, "parent": {}, "depth": {}})
        assert rg.cache_entries() == 3
        assert rg.lookup(0, 0) is None and rg.lookup(4, 0) is not None

    def test_bad_root_and_invalidate(self):
        n, edges = two_components()
        rg = ResidentGraph("g", n, edges, kernel_backend="numpy")
        with pytest.raises(ServiceError) as exc:
            rg.lookup(n, 0)
        assert exc.value.code == "bad_root"
        rg.install(0, 0, rg.compute(0, 0))
        rg.invalidate()
        assert rg.cache_entries() == 0


# ----------------------------------------------------------------------
# GraphStore
# ----------------------------------------------------------------------


class TestGraphStore:
    def test_load_get_drop(self):
        store = GraphStore(kernel_backend="numpy")
        rg = store.load("a", n=6, edges=[(0, 1), (2, 3)])
        assert store.get("a") is rg and "a" in store
        assert store.names() == ["a"]
        store.drop("a")
        with pytest.raises(ServiceError) as exc:
            store.get("a")
        assert exc.value.code == "no_such_graph"

    def test_load_family_and_errors(self):
        store = GraphStore(kernel_backend="numpy")
        rg = store.load("f", family="grid", n=16, seed=3)
        assert rg.dyn.n >= 16 and rg.dyn.m > 0
        with pytest.raises(ServiceError) as exc:
            store.load("x", family="nope", n=8)
        assert exc.value.code == "bad_family"
        with pytest.raises(ServiceError) as exc:
            store.load("x", family="grid")
        assert exc.value.code == "bad_graph"
        with pytest.raises(ServiceError) as exc:
            store.load("x")
        assert exc.value.code == "bad_graph"

    def test_max_graphs_and_replace(self):
        store = GraphStore(kernel_backend="numpy", max_graphs=2)
        store.load("a", n=2, edges=[])
        store.load("b", n=2, edges=[])
        with pytest.raises(ServiceError) as exc:
            store.load("c", n=2, edges=[])
        assert exc.value.code == "too_many_graphs"
        # replacing a resident name is allowed at the cap
        rg = store.load("a", n=5, edges=[(0, 4)])
        assert rg.dyn.n == 5


# ----------------------------------------------------------------------
# ServiceHandle: the in-process batching core
# ----------------------------------------------------------------------


class TestServiceHandle:
    def test_ping_load_dfs_lockstep(self):
        async def main():
            n, edges = two_components()
            async with ServiceHandle() as h:
                assert (await h.op("ping"))["pong"] is True
                resp = await h.op(
                    "load", graph="g", n=n,
                    edges=[list(e) for e in edges],
                )
                assert resp["ok"] and resp["m"] == len(edges)
                r1 = await h.op("dfs", graph="g", root=0, seed=1)
                assert r1["ok"] and r1["cached"] is False
                want = fresh_tree(n, edges, 0, 1)
                assert tree_bytes(r1["tree"]) == tree_bytes(want)
                r2 = await h.op("dfs", graph="g", root=0, seed=1)
                assert r2["cached"] is True
                assert tree_bytes(r2["tree"]) == tree_bytes(want)
                return h.service.counters

        counters = run(main())
        assert counters["dfs_queries"] == 2 and counters["errors"] == 0

    def test_update_then_dfs_stays_lockstep(self):
        async def main():
            n, edges = two_components()
            async with ServiceHandle() as h:
                await h.op(
                    "load", graph="g", n=n,
                    edges=[list(e) for e in edges],
                )
                half = n // 2
                up = await h.op(
                    "update", graph="g", insert=[[0, half]],
                )
                assert up["ok"] and up["mutations"] == 1
                assert up["mode"] in ("incremental", "rebuild")
                post = edges + [(0, half)]
                resp = await h.op("dfs", graph="g", root=half, seed=0)
                want = fresh_tree(n, post, half, 0)
                assert tree_bytes(resp["tree"]) == tree_bytes(want)
                # deleting it again restores the original answer
                await h.op("update", graph="g", delete=[[0, half]])
                resp = await h.op("dfs", graph="g", root=0, seed=0)
                want = fresh_tree(n, edges, 0, 0)
                assert tree_bytes(resp["tree"]) == tree_bytes(want)

        run(main())

    def test_structured_errors_and_liveness(self):
        async def main():
            async with ServiceHandle() as h:
                r = await h.op("dfs", graph="ghost", root=0)
                assert not r["ok"] and r["error"]["code"] == "no_such_graph"
                r = await h.request({"op": "frobnicate"})
                assert r["error"]["code"] == "unknown_op"
                r = await h.request({"op": "dfs", "graph": "g"})
                assert r["error"]["code"] == "missing_field"
                await h.op("load", graph="g", n=4, edges=[[0, 1]])
                r = await h.op("dfs", graph="g", root=99)
                assert r["error"]["code"] == "bad_root"
                r = await h.op("update", graph="g", insert=[[0, 0]])
                assert r["error"]["code"] == "bad_update"
                # the service survived all of it
                assert (await h.op("ping"))["ok"]
                return h.service.counters

        counters = run(main())
        assert counters["errors"] == 5

    def test_stats_and_graphs_ops(self):
        async def main():
            async with ServiceHandle() as h:
                await h.op("load", graph="g", family="gnm", n=16, seed=0)
                await h.op("dfs", graph="g", root=0)
                await h.op("dfs", graph="g", root=0)
                r = await h.op("graphs")
                assert r["graphs"] == ["g"]
                r = await h.op("stats")
                assert r["service"]["responses"] >= 4
                gstats = r["graphs"]["g"]
                assert gstats["cache_hits"] == 1
                assert gstats["kernel_backend"] == "numpy"
                r = await h.op("stats", graph="g")
                assert r["stats"]["mutations"] == 0
                r = await h.op("drop", graph="g")
                assert r["dropped"] is True

        run(main())

    def test_submit_before_start_is_unavailable(self):
        async def main():
            h = ServiceHandle()
            r = await h.request({"op": "ping"})
            assert r["error"]["code"] == "unavailable"

        run(main())

    def test_verify_every_self_audit(self):
        async def main():
            cfg = ServiceConfig(verify_every=1)
            n, edges = two_components()
            async with ServiceHandle(cfg) as h:
                await h.op(
                    "load", graph="g", n=n, edges=[list(e) for e in edges]
                )
                for root in (0, 1, n // 2):
                    r = await h.op("dfs", graph="g", root=root)
                    assert r["ok"], r
                return h.service.counters

        counters = run(main())
        assert counters["lockstep_checks"] == 3
        assert counters["lockstep_violations"] == 0


# ----------------------------------------------------------------------
# TCP round trip
# ----------------------------------------------------------------------


class ServerThread:
    """A ServiceServer on its own event-loop thread (blocking-client tests)."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self._config = config
        self._ready = threading.Event()
        self._loop = None
        self._stop_event = None
        self.address = None
        self.server = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.server = ServiceServer(DFSService(self._config))
        await self.server.start()
        self.address = self.server.address
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        assert self._ready.wait(10), "server failed to start"
        return self

    def __exit__(self, *exc) -> None:
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(10)


class TestTCPRoundTrip:
    def test_full_session(self):
        n, edges = two_components()
        with ServerThread() as srv:
            host, port = srv.address
            with ServiceClient(host, port) as c:
                assert c.op("ping")["pong"] is True
                r = c.op(
                    "load", graph="g", n=n, edges=[list(e) for e in edges]
                )
                assert r["ok"] and r["m"] == len(edges)
                r = c.op("dfs", graph="g", root=0, seed=2, id="q1")
                assert r["ok"] and r["id"] == "q1"
                want = fresh_tree(n, edges, 0, 2)
                assert tree_bytes(r["tree"]) == tree_bytes(want)
                r = c.op("update", graph="g", insert=[[0, n // 2]])
                assert r["ok"] and r["mutations"] == 1
                r = c.op("dfs", graph="g", root=0, seed=2)
                want = fresh_tree(n, edges + [(0, n // 2)], 0, 2)
                assert tree_bytes(r["tree"]) == tree_bytes(want)
                r = c.op("dfs", graph="g", root=n + 5)
                assert not r["ok"] and r["error"]["code"] == "bad_root"
                assert c.op("ping")["ok"]

    def test_two_clients_share_resident_state(self):
        with ServerThread() as srv:
            host, port = srv.address
            with ServiceClient(host, port) as c1:
                c1.op("load", graph="g", family="gnm", n=24, seed=1)
                t1 = c1.op("dfs", graph="g", root=0)["tree"]
            with ServiceClient(host, port) as c2:
                r = c2.op("dfs", graph="g", root=0)
                assert r["cached"] is True
                assert tree_bytes(r["tree"]) == tree_bytes(t1)
