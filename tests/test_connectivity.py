"""Tests for parallel connected components and spanning forest."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, connected_components, spanning_forest
from repro.graph.connectivity import component_sizes, largest_component_size
from repro.graph import generators as G
from repro.pram import Tracker


def labels_agree_with_oracle(g: Graph, labels: list[int]) -> bool:
    comps = g.connected_components_seq()
    for comp in comps:
        # all members share one label, equal to the component minimum
        want = min(comp)
        if any(labels[v] != want for v in comp):
            return False
    return True


class TestConnectedComponents:
    def test_empty_graph(self):
        assert connected_components(Graph(0)) == []

    def test_isolated_vertices(self):
        assert connected_components(Graph(3)) == [0, 1, 2]

    def test_single_edge(self):
        assert connected_components(Graph(2, [(0, 1)])) == [0, 0]

    def test_path(self):
        g = G.path_graph(50)
        assert connected_components(g) == [0] * 50

    def test_two_components(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        labels = connected_components(g)
        assert labels[:3] == [0, 0, 0]
        assert labels[3:] == [3, 3, 3]

    def test_adversarial_label_order(self):
        # descending chain — hooking must still converge in few rounds
        n = 64
        g = Graph(n, [(i, i + 1) for i in range(n - 1)]).relabeled(
            list(reversed(range(n)))
        )
        assert labels_agree_with_oracle(g, connected_components(g))

    def test_random_graphs_match_oracle(self):
        rng = random.Random(9)
        for _ in range(20):
            n = rng.randrange(2, 60)
            m = rng.randrange(0, min(80, n * (n - 1) // 2))
            g = G.gnm_random_graph(n, m, seed=rng.randrange(1 << 30))
            assert labels_agree_with_oracle(g, connected_components(g))

    @given(st.integers(2, 40), st.integers(0, 60), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_oracle(self, n, m, seed):
        m = min(m, n * (n - 1) // 2)
        g = G.gnm_random_graph(n, m, seed=seed)
        assert labels_agree_with_oracle(g, connected_components(g))

    def test_work_near_linear(self):
        g = G.gnm_random_connected_graph(512, 2048, seed=1)
        t = Tracker()
        connected_components(g, t)
        logn = g.n.bit_length()
        assert t.work <= 40 * (g.m + g.n) * logn
        assert t.span <= 60 * logn * logn


class TestSpanningForest:
    def test_forest_spans_and_is_acyclic(self):
        rng = random.Random(4)
        for _ in range(15):
            n = rng.randrange(2, 60)
            m = rng.randrange(0, min(90, n * (n - 1) // 2))
            g = G.gnm_random_graph(n, m, seed=rng.randrange(1 << 30))
            labels, forest = spanning_forest(g)
            comps = g.connected_components_seq()
            # correct cardinality: n - #components edges
            assert len(forest) == g.n - len(comps)
            # acyclic + spanning: the forest alone reproduces the components
            h = Graph(g.n, [g.edge_endpoints(e) for e in forest])
            assert labels_agree_with_oracle(g, connected_components(h))

    def test_forest_on_connected_graph_is_tree(self):
        g = G.gnm_random_connected_graph(100, 300, seed=8)
        _, forest = spanning_forest(g)
        assert len(forest) == 99
        h = Graph(g.n, [g.edge_endpoints(e) for e in forest])
        assert h.is_connected()

    def test_forest_edge_ids_unique(self):
        g = G.gnm_random_connected_graph(80, 200, seed=3)
        _, forest = spanning_forest(g)
        assert len(set(forest)) == len(forest)


class TestSizes:
    def test_component_sizes(self):
        labels = [0, 0, 0, 3, 3, 5]
        assert component_sizes(labels) == {0: 3, 3: 2, 5: 1}

    def test_largest_component(self):
        g = Graph(7, [(0, 1), (1, 2), (2, 3), (4, 5)])
        assert largest_component_size(g) == 4

    def test_largest_component_empty(self):
        assert largest_component_size(Graph(0)) == 0
