"""Parity tests: every numpy kernel against its tracked Python reference.

The numpy backend is an execution engine, not a new algorithm — each
kernel must return exactly what the tracked implementation returns
(scans, ranks) or an equally valid result under the problem's own oracle
(matchings, which draw different random priorities). These tests run
random lists/graphs plus the degenerate shapes (empty, singleton,
all-isolated-vertex) through both backends, and check the dispatch layer
resolves backends in the documented priority order.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph
from repro.graph import generators as G
from repro.graph.connectivity import (
    component_sizes,
    connected_components,
    largest_component_size,
    spanning_forest,
)
from repro.kernels import dispatch, euler, listrank, matching, scan
from repro.kernels.dispatch import (
    get_kernel,
    registered_kernels,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.kernels.rng import LockstepUniform, randomstate_view, sync_python_rng
from repro.kernels.subgraph import induced_subgraph_np
from repro.listrank.ranking import (
    prefix_sums_on_lists,
    sequential_prefix_sums,
)
from repro.matching.luby import is_maximal_matching, maximal_matching
from repro.pram import Tracker, primitives


# ----------------------------------------------------------------------
# dispatch layer
# ----------------------------------------------------------------------

class TestDispatch:
    def test_default_is_tracked(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        set_default_backend(None)
        assert resolve_backend(None) == "tracked"

    def test_explicit_wins(self):
        assert resolve_backend("numpy") == "numpy"
        assert resolve_backend("tracked") == "tracked"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        set_default_backend(None)
        assert resolve_backend(None) == "numpy"

    def test_process_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        set_default_backend("tracked")
        try:
            assert resolve_backend(None) == "tracked"
        finally:
            set_default_backend(None)

    def test_use_backend_scopes_and_restores(self):
        before = resolve_backend(None)
        with use_backend("numpy"):
            assert resolve_backend(None) == "numpy"
        assert resolve_backend(None) == before

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("cuda")
        with pytest.raises(ValueError):
            set_default_backend("cuda")

    def test_unknown_backend_error_names_source(self, monkeypatch):
        with pytest.raises(ValueError, match="backend argument"):
            resolve_backend("cuda")
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "cuda")
        set_default_backend(None)
        with pytest.raises(ValueError, match="REPRO_KERNEL_BACKEND"):
            resolve_backend(None)

    def test_registry_lists_both_backends(self):
        pairs = registered_kernels()
        for op in ("connected_components", "spanning_forest",
                   "component_sizes", "prefix_sums_on_lists",
                   "maximal_matching"):
            assert (op, "numpy") in pairs and (op, "tracked") in pairs
        assert ("induced_subgraph", "numpy") in pairs
        assert callable(get_kernel("connected_components", "numpy"))
        with pytest.raises(KeyError):
            get_kernel("quantum_sort", "numpy")

    def test_entry_points_pick_requested_backend(self):
        # the numpy scan kernel returns identical values but charges
        # different (aggregate) costs — distinguish the backends by cost
        xs = list(range(64))
        t_tracked, t_numpy = Tracker(), Tracker()
        a = primitives.exclusive_scan(t_tracked, xs, backend="tracked")
        b = primitives.exclusive_scan(t_numpy, xs, backend="numpy")
        assert a == b
        assert t_tracked.work != t_numpy.work  # different engines ran


# ----------------------------------------------------------------------
# scan / reduce / pack
# ----------------------------------------------------------------------

class TestScanParity:
    @given(st.lists(st.integers(-1000, 1000), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_scans_match_tracked(self, xs):
        t1, t2 = Tracker(), Tracker()
        assert (
            primitives.exclusive_scan(t1, xs)
            == primitives.exclusive_scan(t2, xs, backend="numpy")
        )
        assert (
            primitives.inclusive_scan(t1, xs)
            == primitives.inclusive_scan(t2, xs, backend="numpy")
        )
        assert primitives.reduce_sum(t1, xs) == primitives.reduce_sum(
            t2, xs, backend="numpy"
        )

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_min_max_match_tracked(self, xs):
        t = Tracker()
        assert primitives.reduce_max(t, xs, backend="numpy") == max(xs)
        assert primitives.reduce_min(t, xs, backend="numpy") == min(xs)

    @given(
        st.lists(
            st.tuples(st.integers(-50, 50), st.booleans()), max_size=200
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_pack_matches_tracked(self, pairs):
        xs = [x for x, _ in pairs]
        flags = [f for _, f in pairs]
        t1, t2 = Tracker(), Tracker()
        assert primitives.pack(t1, xs, flags) == primitives.pack(
            t2, xs, flags, backend="numpy"
        )
        assert primitives.pack_index(t1, flags) == primitives.pack_index(
            t2, flags, backend="numpy"
        )

    def test_pack_preserves_element_identity(self):
        # tuples must come back as tuples, not numpy rows
        xs = [(1, 2), (3, 4), (5, 6)]
        out = primitives.pack(Tracker(), xs, [True, False, True], backend="numpy")
        assert out == [(1, 2), (5, 6)]
        assert all(isinstance(e, tuple) for e in out)

    def test_empty_and_singleton(self):
        t = Tracker()
        assert scan.exclusive_scan(t, []).tolist() == []
        assert scan.inclusive_scan(t, []).tolist() == []
        assert scan.exclusive_scan(t, [7]).tolist() == [0]
        assert scan.reduce_sum(t, []) == 0
        assert scan.pack(t, [], []).tolist() == []
        with pytest.raises(ValueError):
            scan.reduce_max(t, [])
        with pytest.raises(ValueError):
            primitives.reduce_min(t, [], backend="numpy")
        with pytest.raises(ValueError):
            scan.pack(t, [1, 2], [True])


# ----------------------------------------------------------------------
# list ranking
# ----------------------------------------------------------------------

def random_lists(rng, n_vertices, n_lists):
    """Random disjoint lists over shuffled vertex ids."""
    ids = list(range(0, 3 * n_vertices, 3))  # non-contiguous ids
    rng.shuffle(ids)
    prev_of = {}
    values = {}
    cut = sorted(rng.sample(range(1, n_vertices), min(n_lists - 1, n_vertices - 1))) if n_lists > 1 and n_vertices > 1 else []
    bounds = [0] + cut + [n_vertices]
    vertices = []
    for a, b in zip(bounds, bounds[1:]):
        prev = None
        for i in range(a, b):
            v = ids[i]
            vertices.append(v)
            prev_of[v] = prev
            values[v] = rng.randrange(-5, 10)
            prev = v
    return vertices, prev_of, values


class TestListRankParity:
    @given(
        st.integers(0, 120),
        st.integers(1, 8),
        st.integers(0, 2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_sequential_oracle(self, n, k, seed):
        rng = random.Random(seed)
        vertices, prev_of, values = random_lists(rng, n, k)
        want = sequential_prefix_sums(vertices, prev_of, values.get)
        got = prefix_sums_on_lists(
            Tracker(), vertices, prev_of, values.get, backend="numpy"
        )
        assert got == want

    def test_matches_tracked_backends(self):
        rng = random.Random(11)
        vertices, prev_of, values = random_lists(rng, 200, 5)
        t = Tracker()
        tracked = prefix_sums_on_lists(
            t, vertices, prev_of, values.get, backend="tracked"
        )
        fast = prefix_sums_on_lists(
            t, vertices, prev_of, values.get, backend="numpy"
        )
        assert tracked == fast

    def test_suffix_of_list(self):
        # predecessors outside the vertex set are list boundaries
        prev_of = {2: 1, 3: 2, 4: 3}
        got = prefix_sums_on_lists(
            Tracker(), [2, 3, 4], prev_of, lambda v: v, backend="numpy"
        )
        assert got == {2: 2, 3: 5, 4: 9}

    def test_empty_and_singleton(self):
        assert prefix_sums_on_lists(
            Tracker(), [], {}, lambda v: 1, backend="numpy"
        ) == {}
        assert prefix_sums_on_lists(
            Tracker(), [9], {9: None}, lambda v: 4, backend="numpy"
        ) == {9: 4}

    def test_wyllie_ranks_rejects_bad_prev(self):
        with pytest.raises(ValueError):
            listrank.wyllie_ranks(np.array([5]), np.array([1]))
        with pytest.raises(ValueError):
            listrank.wyllie_ranks(np.array([-2]), np.array([1]))
        with pytest.raises(ValueError):
            listrank.wyllie_ranks(np.array([0, 1]), np.array([1]))


# ----------------------------------------------------------------------
# maximal matching
# ----------------------------------------------------------------------

class TestMatchingParity:
    @given(st.integers(2, 60), st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_maximal_on_random_graphs(self, n, seed):
        rng = random.Random(seed)
        m = rng.randrange(0, min(3 * n, n * (n - 1) // 2) + 1)
        g = G.gnm_random_graph(n, m, seed=seed)
        chosen = maximal_matching(
            Tracker(), g.n, g.edges, rng, backend="numpy"
        )
        assert is_maximal_matching(g.n, g.edges, chosen)

    def test_empty_edges_and_isolated_vertices(self):
        assert maximal_matching(Tracker(), 0, [], backend="numpy") == []
        assert maximal_matching(Tracker(), 50, [], backend="numpy") == []

    def test_single_edge(self):
        assert maximal_matching(
            Tracker(), 2, [(0, 1)], backend="numpy"
        ) == [0]

    def test_deterministic_given_rng(self):
        g = G.gnm_random_connected_graph(40, 100, seed=9)
        a = maximal_matching(
            Tracker(), g.n, g.edges, random.Random(3), backend="numpy"
        )
        b = maximal_matching(
            Tracker(), g.n, g.edges, random.Random(3), backend="numpy"
        )
        assert a == b

    def test_graph_helper_uses_cached_csr(self):
        g = G.gnm_random_connected_graph(30, 60, seed=4)
        c1 = g.csr()
        chosen = matching.maximal_matching_graph(
            Tracker(), g, random.Random(0)
        )
        assert is_maximal_matching(g.n, g.edges, chosen)
        assert g.csr() is c1  # no rebuild


# ----------------------------------------------------------------------
# Euler tour construction
# ----------------------------------------------------------------------

def spanning_tree_edges(g, rng):
    """A random spanning forest of g (sequential, test support)."""
    parent = {}
    edges = []
    for s in range(g.n):
        if s in parent:
            continue
        parent[s] = None
        stack = [s]
        while stack:
            u = stack.pop()
            nbrs = list(g.adj[u])
            rng.shuffle(nbrs)
            for w in nbrs:
                if w not in parent:
                    parent[w] = u
                    edges.append((u, w))
                    stack.append(w)
    return edges


class TestEulerTour:
    def check_successors(self, n, edges):
        eu = np.array([e[0] for e in edges], dtype=np.int64)
        ev = np.array([e[1] for e in edges], dtype=np.int64)
        succ = euler.euler_tour_successors(n, eu, ev)
        m = len(edges)
        assert succ.shape == (2 * m,)
        # a permutation…
        assert sorted(succ.tolist()) == list(range(2 * m))
        # …whose arcs chain head-to-tail
        tail = np.concatenate([eu, ev])
        head = np.concatenate([ev, eu])
        assert (head == tail[succ]).all()
        return succ

    @given(st.integers(2, 60), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_random_trees(self, n, seed):
        rng = random.Random(seed)
        g = G.gnm_random_connected_graph(
            n, min(2 * n, n * (n - 1) // 2), seed=seed
        )
        edges = spanning_tree_edges(g, rng)
        succ = self.check_successors(g.n, edges)
        # one cycle spanning all 2m arcs (a single tree)
        a, seen = 0, set()
        while a not in seen:
            seen.add(a)
            a = int(succ[a])
        assert len(seen) == 2 * len(edges)

    def test_forest_has_one_cycle_per_tree(self):
        edges = [(0, 1), (1, 2), (3, 4)]  # two trees + isolated vertex 5
        succ = self.check_successors(6, edges)
        # arcs 0,1 (and twins 3,4) are tree A; arc 2/5 tree B
        cycles = 0
        unseen = set(range(2 * len(edges)))
        while unseen:
            cycles += 1
            a = next(iter(unseen))
            while a in unseen:
                unseen.discard(a)
                a = int(succ[a])
        assert cycles == 2

    @given(st.integers(2, 40), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_tour_order_is_a_valid_euler_tour(self, n, seed):
        rng = random.Random(seed)
        g = G.gnm_random_connected_graph(
            n, min(2 * n, n * (n - 1) // 2), seed=seed
        )
        edges = spanning_tree_edges(g, rng)
        eu = np.array([e[0] for e in edges], dtype=np.int64)
        ev = np.array([e[1] for e in edges], dtype=np.int64)
        root = rng.randrange(n)
        order = euler.euler_tour_order(g.n, eu, ev, root=root)
        m = len(edges)
        assert order.shape == (2 * m,)
        tail = np.concatenate([eu, ev])
        head = np.concatenate([ev, eu])
        # starts and ends at the root, chains, and uses every arc once
        assert tail[order[0]] == root and head[order[-1]] == root
        for a, b in zip(order, order[1:]):
            assert head[a] == tail[b]
        assert sorted(order.tolist()) == list(range(2 * m))

    def test_tour_order_forest_restricts_to_roots_tree(self):
        eu = np.array([0, 1, 3], dtype=np.int64)
        ev = np.array([1, 2, 4], dtype=np.int64)
        assert euler.euler_tour_order(5, eu, ev, root=0).size == 4
        assert euler.euler_tour_order(5, eu, ev, root=3).size == 2

    def test_empty_and_isolated_root(self):
        empty = np.empty(0, dtype=np.int64)
        assert euler.euler_tour_successors(3, empty, empty).size == 0
        assert euler.euler_tour_order(3, empty, empty, root=1).size == 0
        eu = np.array([0], dtype=np.int64)
        ev = np.array([1], dtype=np.int64)
        assert euler.euler_tour_order(3, eu, ev, root=2).size == 0


# ----------------------------------------------------------------------
# CSR cache on Graph
# ----------------------------------------------------------------------

class TestCSRCache:
    def test_cached_until_mutation(self):
        g = Graph(4, [(0, 1), (1, 2)])
        c1 = g.csr()
        assert g.csr() is c1
        g._add_edge(2, 3, False)  # simulate a mutating subclass
        c2 = g.csr()
        assert c2 is not c1
        assert c2.m == 3
        assert sorted(c2.neighbors(2).tolist()) == [1, 3]

    def test_view_matches_adjacency(self):
        g = G.gnm_random_connected_graph(60, 140, seed=8)
        c = g.csr()
        for v in range(g.n):
            assert sorted(c.neighbors(v).tolist()) == sorted(g.adj[v])


# ----------------------------------------------------------------------
# rng lockstep bridge (random.Random <-> numpy RandomState)
# ----------------------------------------------------------------------

class TestRngBridge:
    def test_view_reproduces_python_stream(self):
        rng = random.Random(1234)
        probe = random.Random(1234)
        want = [probe.random() for _ in range(1000)]
        got = randomstate_view(rng).random_sample(1000).tolist()
        assert got == want

    def test_sync_back_continues_the_stream(self):
        rng = random.Random(77)
        probe = random.Random(77)
        _ = [probe.random() for _ in range(123)]
        rs = randomstate_view(rng)
        rs.random_sample(123)
        sync_python_rng(rng, rs)
        assert rng.getstate() == probe.getstate()
        assert [rng.random() for _ in range(10)] == [
            probe.random() for _ in range(10)
        ]

    def test_lockstep_uniform_noop_without_draws(self):
        rng = random.Random(5)
        state = rng.getstate()
        with LockstepUniform(rng):
            pass
        assert rng.getstate() == state

    def test_lockstep_matching_preserves_stream(self):
        g = G.gnm_random_connected_graph(60, 150, seed=2)
        r1, r2 = random.Random(42), random.Random(42)
        a = maximal_matching(Tracker(), g.n, g.edges, r1, backend="tracked")
        b = maximal_matching(Tracker(), g.n, g.edges, r2, backend="numpy")
        assert a == b
        assert r1.getstate() == r2.getstate()

    @given(st.integers(2, 80), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_lockstep_matching_random_graphs(self, n, seed):
        rng = random.Random(seed)
        m = rng.randrange(0, min(3 * n, n * (n - 1) // 2) + 1)
        g = G.gnm_random_graph(n, m, seed=seed)
        r1, r2 = random.Random(seed ^ 0xBEEF), random.Random(seed ^ 0xBEEF)
        a = maximal_matching(Tracker(), g.n, g.edges, r1, backend="tracked")
        b = maximal_matching(Tracker(), g.n, g.edges, r2, backend="numpy")
        assert a == b and r1.getstate() == r2.getstate()

    @given(st.integers(0, 250), st.integers(1, 8), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_lockstep_anderson_miller_ranks_and_stream(self, n, k, seed):
        rng = random.Random(seed)
        vertices, prev_of, values = random_lists(rng, n, k)
        r1, r2 = random.Random(seed ^ 0xA5), random.Random(seed ^ 0xA5)
        a = prefix_sums_on_lists(
            Tracker(), vertices, prev_of, values.get,
            method="anderson-miller", rng=r1, backend="tracked",
        )
        b = prefix_sums_on_lists(
            Tracker(), vertices, prev_of, values.get,
            method="anderson-miller", rng=r2, backend="numpy",
        )
        assert a == b
        assert r1.getstate() == r2.getstate()


# ----------------------------------------------------------------------
# connected components / spanning forest parity
# ----------------------------------------------------------------------

def edge_case_graphs():
    return [
        Graph(0),
        Graph(1),
        Graph(7),  # all isolated
        Graph(2, [(0, 1)]),
        Graph(6, [(0, 1), (1, 2), (3, 4)]),  # forest + isolated vertex
        Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]),  # cycle
        Graph(4, [(0, 1), (0, 2), (0, 3)]),  # star
    ]


class TestComponentsParity:
    @pytest.mark.parametrize("g", edge_case_graphs())
    def test_edge_cases(self, g):
        assert connected_components(g, Tracker()) == connected_components(
            g, Tracker(), backend="numpy"
        )
        la, fa = spanning_forest(g, Tracker())
        lb, fb = spanning_forest(g, Tracker(), backend="numpy")
        assert la == lb and fa == fb

    @given(st.integers(2, 90), st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_labels_and_forest_identical_on_random_graphs(self, n, seed):
        rng = random.Random(seed)
        m = rng.randrange(0, min(3 * n, n * (n - 1) // 2) + 1)
        g = G.gnm_random_graph(n, m, seed=seed)
        assert connected_components(g, Tracker()) == connected_components(
            g, Tracker(), backend="numpy"
        )
        la, fa = spanning_forest(g, Tracker())
        lb, fb = spanning_forest(g, Tracker(), backend="numpy")
        assert la == lb
        assert fa == fb  # same edge ids in the same recording order

    @given(st.integers(2, 90), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_forest_is_valid_spanning_forest(self, n, seed):
        rng = random.Random(seed)
        m = rng.randrange(0, min(3 * n, n * (n - 1) // 2) + 1)
        g = G.gnm_random_graph(n, m, seed=seed)
        labels, forest = spanning_forest(g, Tracker(), backend="numpy")
        comps = {tuple(sorted(c)) for c in g.connected_components_seq()}
        # acyclic: |forest| == n - #components; spanning: the forest edges
        # alone reproduce the component structure
        assert len(forest) == g.n - len(comps)
        h = Graph(g.n, [g.edges[eid] for eid in forest])
        assert {tuple(sorted(c)) for c in h.connected_components_seq()} == comps
        # labels are the component minima
        for comp in comps:
            assert all(labels[v] == comp[0] for v in comp)

    def test_component_sizes_parity_and_largest(self):
        g = G.gnm_random_graph(80, 70, seed=13)
        labels = connected_components(g, Tracker())
        assert component_sizes(labels, Tracker()) == component_sizes(
            labels, Tracker(), backend="numpy"
        )
        assert largest_component_size(g, Tracker()) == largest_component_size(
            g, Tracker(), backend="numpy"
        )
        assert component_sizes([], Tracker(), backend="numpy") == {}

    def test_component_sizes_charges_combine_work(self):
        t = Tracker()
        component_sizes([0, 0, 1, 1, 1], t)
        # per-element counting plus the combining tree must both cost work
        assert t.work >= 2 * 5


# ----------------------------------------------------------------------
# induced subgraph extraction parity
# ----------------------------------------------------------------------

def graphs_equal(a, b):
    return (
        a.n == b.n
        and a.edges == b.edges
        and a.adj == b.adj
        and a.adj_eids == b.adj_eids
    )


class TestSubgraphParity:
    @given(st.integers(1, 70), st.integers(0, 2**31), st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_subgraph_identical_including_adjacency(self, n, seed, shuffle):
        rng = random.Random(seed)
        m = rng.randrange(0, min(3 * n, n * (n - 1) // 2) + 1)
        g = G.gnm_random_graph(n, m, seed=seed)
        vs = rng.sample(range(n), rng.randrange(1, n + 1))
        if not shuffle:
            vs = sorted(vs)
        s1, m1 = g.subgraph(vs)
        s2, m2 = g.subgraph(vs, backend="numpy")
        assert graphs_equal(s1, s2) and m1 == m2

    @given(st.integers(1, 70), st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_driver_induced_identical(self, n, seed):
        from repro.core.dfs import _induced

        rng = random.Random(seed)
        m = rng.randrange(0, min(3 * n, n * (n - 1) // 2) + 1)
        g = G.gnm_random_graph(n, m, seed=seed)
        vs = sorted(rng.sample(range(n), rng.randrange(1, n + 1)))
        t1, t2 = Tracker(), Tracker()
        s1, m1 = _induced(g, vs, t1)
        s2, m2 = _induced(g, vs, t2, backend="numpy")
        assert graphs_equal(s1, s2) and m1 == m2
        # the driver-level scan charge must be backend-independent
        assert t1.work == t2.work and t1.span == t2.span

    def test_empty_vertex_set(self):
        g = Graph(4, [(0, 1), (2, 3)])
        s, mp = g.subgraph([], backend="numpy")
        assert s.n == 0 and s.m == 0 and mp == {}

    def test_trusted_constructor_matches_incremental(self):
        g = G.gnm_random_graph(40, 90, seed=3)
        s1, _ = g.subgraph(list(range(0, 40, 2)))
        s2, _ = g.subgraph(list(range(0, 40, 2)), backend="numpy")
        assert graphs_equal(s1, s2)
        # lazy edge set still answers has_edge / rejects duplicates
        for u, v in s2.edges[:5]:
            assert s2.has_edge(u, v) and s2.has_edge(v, u)
        assert not s2.has_edge(0, 0)
        if s2.m:
            with pytest.raises(ValueError):
                s2._add_edge(*s2.edges[0], False)
        # and the CSR view built from trusted arrays is consistent
        c = s2.csr()
        for v in range(s2.n):
            assert sorted(c.neighbors(v).tolist()) == sorted(s2.adj[v])

    def test_induced_subgraph_np_rejects_bad_order(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(ValueError):
            induced_subgraph_np(g, [0, 1], order="sideways")


# ----------------------------------------------------------------------
# whole-pipeline: the numpy backend drives the real algorithm
# ----------------------------------------------------------------------

class TestBackendEndToEnd:
    def test_parallel_dfs_on_numpy_backend(self):
        from repro import parallel_dfs

        g = G.gnm_random_connected_graph(300, 900, seed=21)
        res = parallel_dfs(g, 0, kernel_backend="numpy", verify=True)
        assert len(res.parent) == g.n

    def test_separator_on_numpy_backend(self):
        from repro.core.separator import build_separator
        from repro.core.verify import is_separator

        g = G.gnm_random_connected_graph(200, 500, seed=5)
        sep = build_separator(g, Tracker(), backend="numpy", verify=True)
        assert is_separator(g, sep.vertices)

    @pytest.mark.parametrize("seed,n,m", [(7, 150, 400), (8, 400, 900)])
    def test_parallel_dfs_identical_across_backends(self, seed, n, m):
        from repro import parallel_dfs

        g = G.gnm_random_connected_graph(n, m, seed=seed)
        r1 = parallel_dfs(
            g, 0, Tracker(), random.Random(123), kernel_backend="tracked"
        )
        r2 = parallel_dfs(
            g, 0, Tracker(), random.Random(123), kernel_backend="numpy"
        )
        assert r1.parent == r2.parent
        assert r1.depth == r2.depth
        assert r1.levels == r2.levels

    def test_phase_profile_recorded_in_stats(self):
        from repro import parallel_dfs
        from repro.analysis.metrics import phase_seconds

        g = G.gnm_random_connected_graph(120, 300, seed=6)
        res = parallel_dfs(g, 0, kernel_backend="numpy")
        prof = phase_seconds(res.stats)
        assert {"separator", "absorb", "components", "induce"} <= set(prof)
        assert all(v >= 0.0 for v in prof.values())
        # plain counters are untouched by the profiler keys
        assert "components_processed" in res.stats


# ----------------------------------------------------------------------
# absorption-subsystem kernels (kernels.absorb)
# ----------------------------------------------------------------------

class TestAbsorbKernels:
    def test_rc_coin_row_matches_scalar_coin(self):
        from repro.kernels.absorb import rc_coin_row
        from repro.structures.rc_tree import _coin

        for salt in (0, 1, 0xDEADBEEF, (1 << 64) - 1):
            for level in (0, 1, 5, 63):
                row = rc_coin_row(257, level, salt)
                for v in range(257):
                    assert bool(row[v]) == _coin(v, level, salt), (
                        v, level, salt,
                    )

    def test_nontree_counts_matches_manual(self):
        from repro.kernels.absorb import nontree_counts_np

        nt_u = [0, 0, 3, 5]
        nt_v = [1, 2, 4, 5]
        counts = nontree_counts_np(7, nt_u, nt_v)
        assert counts.tolist() == [2, 1, 1, 1, 1, 2, 0]
        assert nontree_counts_np(3, [], []).tolist() == [0, 0, 0]

    def test_witness_lexmax_matches_dict_reference(self):
        from repro.kernels.absorb import witness_lexmax_np

        rng = random.Random(11)
        for _ in range(30):
            n = rng.randrange(2, 40)
            k = rng.randrange(0, 60)
            nb = [rng.randrange(n) for _ in range(k)]
            d = [rng.randrange(0, 25) for _ in range(k)]
            src = [rng.randrange(n) for _ in range(k)]
            want: dict[int, tuple[int, int]] = {}
            for i in range(k):
                cur = want.get(nb[i])
                if cur is None or (d[i], src[i]) > cur:
                    want[nb[i]] = (d[i], src[i])
            assert witness_lexmax_np(n, nb, d, src) == want

    def test_forest_euler_tours_rebuilds_identical_forest(self):
        from repro.kernels.absorb import forest_euler_tours
        from repro.structures.euler_tour import EulerTourForest

        g = G.gnm_random_connected_graph(60, 150, seed=17)
        rng = random.Random(17)
        tree = spanning_tree_edges(g, rng)
        # incremental reference
        ref = EulerTourForest(g.n)
        for u, v in tree:
            ref.link(u, v)
        # bulk build from the numpy successor cycle
        bulk = EulerTourForest(g.n)
        tu = [u for u, _ in tree]
        tv = [v for _, v in tree]
        bulk.build_from_tours(
            forest_euler_tours(g.n, tu, tv), tag_min_arcs=False
        )
        bulk.check_invariants()
        assert set(bulk.arcs) == set(ref.arcs)
        for v in range(g.n):
            assert bulk.connected(0, v) == ref.connected(0, v)
            assert bulk.component_size(v) == ref.component_size(v)
            assert bulk.component_rep(v) == ref.component_rep(v)

    def test_forest_euler_tours_covers_isolated_vertices(self):
        from repro.kernels.absorb import forest_euler_tours

        # forest: one edge (1,2) and two isolated vertices 0, 3
        tours = forest_euler_tours(4, [1], [2])
        flat_vertices = {
            x for seq in tours for x in seq if not isinstance(x, tuple)
        }
        assert flat_vertices == {1, 2}  # isolated vertices get no tour

    def test_hdt_numpy_init_matches_tracked(self):
        from repro.structures.hdt import HDTConnectivity

        g = G.gnm_random_connected_graph(80, 240, seed=23)
        h_tr = HDTConnectivity(g, kernel_backend="tracked")
        h_np = HDTConnectivity(g, kernel_backend="numpy")
        assert sorted(h_tr.spanning_forest_edges()) == sorted(
            h_np.spanning_forest_edges()
        )
        h_np.check_invariants()
        # identical deletion behavior from the identical starting state
        order = list(range(g.m))
        random.Random(2).shuffle(order)
        for i in range(0, g.m, 8):
            c_tr = h_tr.batch_delete(order[i : i + 8])
            c_np = h_np.batch_delete(order[i : i + 8])
            assert [(c.kind, c.u, c.v) for c in c_tr] == [
                (c.kind, c.u, c.v) for c in c_np
            ]
        assert h_tr.spanning_forest_edges() == h_np.spanning_forest_edges()
