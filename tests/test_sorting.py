"""Tests for the parallel merge sort (D4)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram import Tracker, parallel_merge, parallel_sort


class TestParallelMerge:
    def test_basic(self):
        t = Tracker()
        assert parallel_merge(t, [1, 4, 7], [2, 3, 9], key=lambda x: x) == [
            1, 2, 3, 4, 7, 9,
        ]

    def test_empty_sides(self):
        t = Tracker()
        assert parallel_merge(t, [], [1, 2], key=lambda x: x) == [1, 2]
        assert parallel_merge(t, [3], [], key=lambda x: x) == [3]

    def test_skewed_lengths(self):
        t = Tracker()
        a = list(range(0, 200, 2))
        b = [55]
        assert parallel_merge(t, a, b, key=lambda x: x) == sorted(a + b)

    @given(st.lists(st.integers(-100, 100)), st.lists(st.integers(-100, 100)))
    @settings(max_examples=50, deadline=None)
    def test_property(self, a, b):
        t = Tracker()
        got = parallel_merge(t, sorted(a), sorted(b), key=lambda x: x)
        assert got == sorted(a + b)


class TestParallelSort:
    def test_basic(self):
        t = Tracker()
        assert parallel_sort(t, [5, 1, 4, 1, 5, 9, 2, 6]) == [1, 1, 2, 4, 5, 5, 6, 9]

    def test_with_key(self):
        t = Tracker()
        got = parallel_sort(t, ["bbb", "a", "cc"], key=len)
        assert got == ["a", "cc", "bbb"]

    def test_empty_and_single(self):
        t = Tracker()
        assert parallel_sort(t, []) == []
        assert parallel_sort(t, [7]) == [7]

    @given(st.lists(st.integers(-1000, 1000), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_builtin(self, xs):
        t = Tracker()
        assert parallel_sort(t, xs) == sorted(xs)

    def test_work_n_log_n(self):
        t = Tracker()
        n = 4096
        rng = random.Random(1)
        xs = [rng.randrange(10**6) for _ in range(n)]
        parallel_sort(t, xs)
        assert t.work <= 20 * n * n.bit_length()

    def test_span_polylog(self):
        t = Tracker()
        n = 4096
        rng = random.Random(2)
        xs = [rng.randrange(10**6) for _ in range(n)]
        parallel_sort(t, xs)
        logn = n.bit_length()
        assert t.span <= 20 * logn**3
