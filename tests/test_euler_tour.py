"""Tests for the Euler tour forest."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.euler_tour import EulerTourForest


class ReferenceForest:
    """Trivially correct union-of-edges forest for cross-validation."""

    def __init__(self, n):
        self.n = n
        self.edges = set()

    def adj(self):
        a = [[] for _ in range(self.n)]
        for u, v in self.edges:
            a[u].append(v)
            a[v].append(u)
        return a

    def component(self, v):
        a = self.adj()
        seen = {v}
        stack = [v]
        while stack:
            x = stack.pop()
            for w in a[x]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return seen

    def link(self, u, v):
        self.edges.add((u, v))

    def cut(self, u, v):
        self.edges.discard((u, v))
        self.edges.discard((v, u))


class TestBasicOps:
    def test_initial_singletons(self):
        f = EulerTourForest(4)
        assert not f.connected(0, 1)
        assert f.connected(2, 2)
        assert f.component_size(3) == 1

    def test_link_connects(self):
        f = EulerTourForest(3)
        f.link(0, 1)
        assert f.connected(0, 1)
        assert not f.connected(0, 2)
        assert f.component_size(0) == 2

    def test_cut_disconnects(self):
        f = EulerTourForest(3)
        f.link(0, 1)
        f.link(1, 2)
        f.cut(0, 1)
        assert not f.connected(0, 1)
        assert f.connected(1, 2)
        assert f.component_size(0) == 1
        assert f.component_size(2) == 2

    def test_cut_either_orientation(self):
        f = EulerTourForest(2)
        f.link(0, 1)
        f.cut(1, 0)
        assert not f.connected(0, 1)

    def test_link_cycle_rejected(self):
        f = EulerTourForest(3)
        f.link(0, 1)
        f.link(1, 2)
        with pytest.raises(ValueError):
            f.link(0, 2)

    def test_link_self_loop_rejected(self):
        with pytest.raises(ValueError):
            EulerTourForest(2).link(1, 1)

    def test_cut_missing_edge_rejected(self):
        f = EulerTourForest(3)
        f.link(0, 1)
        with pytest.raises(ValueError):
            f.cut(1, 2)

    def test_duplicate_link_rejected(self):
        f = EulerTourForest(2)
        f.link(0, 1)
        with pytest.raises(ValueError):
            f.link(0, 1)

    def test_component_vertices(self):
        f = EulerTourForest(5)
        f.link(0, 1)
        f.link(1, 2)
        assert sorted(f.component_vertices(2)) == [0, 1, 2]
        assert f.component_vertices(4) == [4]

    def test_has_edge(self):
        f = EulerTourForest(3)
        f.link(0, 2)
        assert f.has_edge(0, 2)
        assert not f.has_edge(2, 1)


class TestAggregates:
    def test_val1_component_sum(self):
        f = EulerTourForest(4)
        f.link(0, 1)
        f.link(2, 3)
        f.add_vertex_val1(0, 5)
        f.add_vertex_val1(1, 2)
        f.add_vertex_val1(2, 9)
        assert f.component_agg1(1) == 7
        assert f.component_agg1(3) == 9

    def test_val1_survives_restructuring(self):
        f = EulerTourForest(5)
        for v in range(5):
            f.add_vertex_val1(v, v)
        for a, b in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            f.link(a, b)
        assert f.component_agg1(0) == 10
        f.cut(1, 2)
        assert f.component_agg1(0) == 1
        assert f.component_agg1(4) == 9

    def test_find_vertex_with_val1(self):
        f = EulerTourForest(6)
        for a, b in [(0, 1), (1, 2), (3, 4)]:
            f.link(a, b)
        f.add_vertex_val1(2, 1)
        assert f.find_vertex_with_val1(0) == 2
        assert f.find_vertex_with_val1(3) is None
        f.add_vertex_val1(2, -1)
        assert f.find_vertex_with_val1(0) is None

    def test_negative_val1_rejected(self):
        f = EulerTourForest(2)
        with pytest.raises(ValueError):
            f.add_vertex_val1(0, -1)

    def test_arc_val2_tagging(self):
        f = EulerTourForest(4)
        f.link(0, 1)
        f.link(1, 2)
        f.set_arc_val2(0, 1, 1)
        assert f.component_agg2(2) == 1
        assert f.find_arc_with_val2(2) == (0, 1)
        f.set_arc_val2(0, 1, 0)
        assert f.find_arc_with_val2(2) is None

    def test_arc_val2_missing_edge(self):
        f = EulerTourForest(3)
        with pytest.raises(ValueError):
            f.set_arc_val2(0, 1, 1)


class TestRandomizedCrossValidation:
    def run_ops(self, n, steps, seed):
        rng = random.Random(seed)
        f = EulerTourForest(n)
        ref = ReferenceForest(n)
        links = set()
        for _ in range(steps):
            u = rng.randrange(n)
            v = rng.randrange(n)
            if u == v:
                continue
            if f.connected(u, v):
                # either verify connectivity or cut a random existing edge
                assert ref.component(u) >= {v}
                if links and rng.random() < 0.6:
                    a, b = rng.choice(sorted(links))
                    f.cut(a, b)
                    ref.cut(a, b)
                    links.discard((a, b))
            else:
                assert v not in ref.component(u)
                f.link(u, v)
                ref.link(u, v)
                links.add((u, v))
            # spot-check sizes
            w = rng.randrange(n)
            assert f.component_size(w) == len(ref.component(w))
        f.check_invariants()

    def test_small_random(self):
        self.run_ops(8, 60, seed=1)

    def test_medium_random(self):
        self.run_ops(24, 150, seed=2)

    def test_larger_random(self):
        self.run_ops(64, 250, seed=3)

    @given(st.integers(2, 16), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_random_ops(self, n, seed):
        self.run_ops(n, 40, seed=seed)


class TestTourStructure:
    def test_tour_sequence_contents(self):
        f = EulerTourForest(3)
        f.link(0, 1)
        f.link(1, 2)
        seq = f.tour_sequence(0)
        vertices = [x for x in seq if isinstance(x, int)]
        arcs = [x for x in seq if isinstance(x, tuple)]
        assert sorted(vertices) == [0, 1, 2]
        assert len(arcs) == 4  # two per tree edge


class TestKeyAggregate:
    def test_set_and_read_vertex_key(self):
        f = EulerTourForest(4)
        assert f.vertex_key(0) is None
        f.set_vertex_key(0, 7)
        assert f.vertex_key(0) == 7
        f.set_vertex_key(0, None)
        assert f.vertex_key(0) is None

    def test_component_min_key(self):
        f = EulerTourForest(5)
        f.link(0, 1)
        f.link(1, 2)
        f.set_vertex_key(0, 9)
        f.set_vertex_key(2, 4)
        assert f.component_min_key(1) == (4, 2)
        assert f.component_min_key(3) is None

    def test_min_key_tracks_cuts(self):
        f = EulerTourForest(4)
        for a, b in [(0, 1), (1, 2), (2, 3)]:
            f.link(a, b)
        f.set_vertex_key(0, 1)
        f.set_vertex_key(3, 2)
        assert f.component_min_key(2) == (1, 0)
        f.cut(1, 2)
        assert f.component_min_key(2) == (2, 3)
        assert f.component_min_key(0) == (1, 0)

    def test_set_vertex_val1_overwrites(self):
        f = EulerTourForest(3)
        f.set_vertex_val1(1, 5)
        assert f.vertex_val1(1) == 5
        f.set_vertex_val1(1, 2)
        assert f.component_agg1(1) == 2
