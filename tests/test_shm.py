"""Lifecycle tests for the shared-memory arena (``repro.pram.shm``).

The arena is the zero-copy transport for the parallel kernel backend:
the parent publishes numpy arrays into POSIX shared memory, workers
attach read-only views by name, and the *owner* is solely responsible
for unlinking. These tests pin the lifecycle invariants the backend
depends on — create/attach round-trips, idempotent close, unlink under
exceptions via the context manager — and end every case with a
``leaked_segments()`` sweep so a regression shows up as a named
``/dev/shm`` entry, not a slow host.
"""

import numpy as np
import pytest

from repro.pram.shm import ShmArena, ShmRef, attach_ref, leaked_segments


@pytest.fixture(autouse=True)
def _no_leaks():
    assert not leaked_segments(), "pre-existing repro-shm segments"
    yield
    assert not leaked_segments(), "test leaked shared-memory segments"


def test_put_ref_view_roundtrip():
    xs = np.arange(100, dtype=np.int64)
    with ShmArena() as a:
        a.put("xs", xs)
        ref = a.ref("xs")
        assert isinstance(ref, ShmRef)
        assert ref.shape == (100,)
        np.testing.assert_array_equal(a.view("xs"), xs)
        # the arena holds a copy: mutating the source must not alias
        xs[0] = -1
        assert a.view("xs")[0] == 0


def test_attach_ref_sees_owner_writes():
    with ShmArena() as a:
        a.put("v", np.zeros(8, dtype=np.int64))
        ref = a.ref("v")
        seg, view = attach_ref(ref)
        try:
            a.view("v")[3] = 42
            assert view[3] == 42  # same physical pages, not a copy
        finally:
            del view
            seg.close()


def test_empty_and_contains_and_keys():
    with ShmArena() as a:
        assert "xs" not in a
        a.put("xs", np.ones(4, dtype=np.int64))
        a.put("ys", np.zeros(2, dtype=np.float64))
        assert "xs" in a and "ys" in a
        assert sorted(a.keys()) == ["xs", "ys"]


def test_dtype_and_shape_preserved():
    arrs = {
        "i8": np.arange(6, dtype=np.int8),
        "f64": np.linspace(0, 1, 7),
        "mat": np.arange(12, dtype=np.int64).reshape(3, 4),
        "empty": np.empty(0, dtype=np.int64),
    }
    with ShmArena() as a:
        for k, v in arrs.items():
            a.put(k, v)
        for k, v in arrs.items():
            got = a.view(k)
            assert got.dtype == v.dtype and got.shape == v.shape
            np.testing.assert_array_equal(got, v)


def test_context_manager_unlinks_on_exception():
    with pytest.raises(RuntimeError, match="boom"):
        with ShmArena() as a:
            a.put("xs", np.arange(10, dtype=np.int64))
            assert leaked_segments()  # live while the arena is open
            raise RuntimeError("boom")
    assert not leaked_segments()


def test_double_close_and_unlink_idempotent():
    a = ShmArena()
    a.put("xs", np.arange(4, dtype=np.int64))
    a.close()
    a.close()  # second close is a no-op, not an error
    a.unlink()
    a.unlink()


def test_unlink_without_put_is_safe():
    a = ShmArena()
    a.unlink()


def test_missing_key_raises():
    with ShmArena() as a:
        with pytest.raises(KeyError):
            a.view("nope")
        with pytest.raises(KeyError):
            a.ref("nope")


def test_leaked_segments_names_the_segment():
    a = ShmArena()
    a.put("xs", np.arange(4, dtype=np.int64))
    leaks = leaked_segments()
    assert leaks, "open arena segment should be visible"
    a.unlink()
    assert not leaked_segments()
