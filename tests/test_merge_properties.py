"""Direct verification of the Lemma 4.2 guarantees.

The path-merging output must satisfy three properties (Section 4.1.2);
the whole Appendix A singular-case analysis rests on them. We verify them
by brute force on randomized instances:

1. maximality — no path from ``L - L̂`` to ``S - Ŝ`` whose internal
   vertices all lie in ``D`` (the free vertices);
2. no such path from the discarded parts ``L*`` either;
3. ``|P2|`` is at most the termination threshold.

Property 1 and 2 follow from Lemma 4.3 ("dead vertices have no D-path to
an unjoined short"), which we also test directly.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.path_merge import merge_paths
from repro.graph import Graph
from repro.graph import generators as G
from repro.pram import Tracker


def d_reachable(g: Graph, sources: set[int], allowed_internal: set[int]) -> set[int]:
    """Vertices reachable from `sources` via paths whose internal vertices
    are all in `allowed_internal` (endpoints unconstrained)."""
    out = set()
    frontier = set(sources)
    seen = set(sources)
    while frontier:
        nxt = set()
        for u in frontier:
            for w in g.adj[u]:
                if w in seen:
                    continue
                out.add(w)
                seen.add(w)
                if w in allowed_internal:
                    nxt.add(w)
        frontier = nxt
    return out


def run_merge(n, m, n_long, n_short, seed):
    rng = random.Random(seed)
    g = G.gnm_random_connected_graph(n, m, seed=seed)
    vs = list(range(n))
    rng.shuffle(vs)
    longs = [[vs[i]] for i in range(n_long)]
    shorts = [[vs[n_long + i]] for i in range(n_short)]
    t = Tracker()
    res = merge_paths(g, t, longs, shorts, rng, threshold=1.0)
    return g, longs, shorts, res


def classify(g, longs, shorts, res):
    all_long_orig = {v for l in longs for v in l}
    all_short = {v for s in shorts for v in s}
    joined_long_idx = set(res.p1) | set(res.p2)
    unjoined_longs = {
        v
        for i, st_ in enumerate(res.longs)
        if i not in joined_long_idx
        for v in st_.orig
    }
    l_star = {v for st_ in res.longs for v in st_.killed_orig}
    dead_ext = {v for st_ in res.longs for v in st_.killed_ext}
    joined_short_vs = {
        v for si in res.joined_shorts for v in shorts[si]
    }
    unjoined_shorts = all_short - joined_short_vs
    cur_vertices = {v for st_ in res.longs for v in st_.cur}
    # D = everything not on original paths (free vertices)
    d_vertices = set(range(g.n)) - all_long_orig - all_short
    # D minus what merging consumed (extensions) or killed
    d_free = d_vertices - cur_vertices - dead_ext
    return {
        "unjoined_longs": unjoined_longs,
        "l_star": l_star,
        "dead_ext": dead_ext,
        "unjoined_shorts": unjoined_shorts,
        "d_free": d_free,
        "d_all": d_vertices,
    }


SCENARIOS = [
    (20, 40, 3, 4, 0),
    (30, 60, 4, 6, 1),
    (40, 90, 5, 8, 2),
    (25, 50, 6, 3, 3),
    (50, 110, 8, 10, 4),
]


@pytest.mark.parametrize("n,m,nl,ns,seed", SCENARIOS)
class TestLemma42Properties:
    def test_property_1_maximality(self, n, m, nl, ns, seed):
        g, longs, shorts, res = run_merge(n, m, nl, ns, seed)
        c = classify(g, longs, shorts, res)
        # the D-internal paths may pass through free *or dead* D vertices —
        # Lemma 4.3's point is that dead vertices block nothing new, so the
        # conservative check uses every vertex outside the final paths/Q
        allowed = c["d_free"] | c["dead_ext"]
        reach = d_reachable(g, c["unjoined_longs"], allowed)
        assert not (reach & c["unjoined_shorts"]), (
            "an unjoined long can still reach an unjoined short through D"
        )

    def test_property_2_discarded_parts(self, n, m, nl, ns, seed):
        g, longs, shorts, res = run_merge(n, m, nl, ns, seed)
        c = classify(g, longs, shorts, res)
        allowed = c["d_free"] | c["dead_ext"]
        reach = d_reachable(g, c["l_star"], allowed)
        assert not (reach & c["unjoined_shorts"]), (
            "a discarded L* piece can still reach an unjoined short through D"
        )

    def test_property_3_p2_bounded(self, n, m, nl, ns, seed):
        g, longs, shorts, res = run_merge(n, m, nl, ns, seed)
        # threshold=1.0: the process only stops when fewer than one head is
        # active, so at most the final frozen head can land in P2
        assert len(res.p2) <= 1


class TestLemma43DeadVertices:
    @given(st.integers(12, 40), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_dead_vertices_cannot_reach_unjoined_shorts(self, n, seed):
        rng = random.Random(seed)
        m = min(2 * n, n * (n - 1) // 2)
        g, longs, shorts, res = run_merge(n, m, max(1, n // 8), max(1, n // 6), seed)
        c = classify(g, longs, shorts, res)
        dead = c["l_star"] | c["dead_ext"]
        if not dead:
            return
        allowed = c["d_free"] | c["dead_ext"]
        reach = d_reachable(g, dead, allowed)
        assert not (reach & c["unjoined_shorts"])
