"""Tests for edge classification and fundamental cycles."""

import random

import networkx as nx
import pytest

from repro.apps.cycles import classify_edges, fundamental_cycles
from repro.graph import Graph
from repro.graph import generators as G


class TestClassification:
    def test_tree_has_no_back_edges(self):
        g = G.random_tree(30, seed=1)
        cls = classify_edges(g, 0)
        assert cls.back_edges == []
        assert len(cls.tree_edges) == 29

    def test_cycle_graph_one_back_edge(self):
        g = G.cycle_graph(8)
        cls = classify_edges(g, 0)
        assert len(cls.back_edges) == 1
        assert len(cls.tree_edges) == 7

    def test_counts_match_cyclomatic_number(self):
        rng = random.Random(2)
        for trial in range(10):
            n = rng.randrange(4, 40)
            m = rng.randrange(n - 1, min(3 * n, n * (n - 1) // 2) + 1)
            g = G.gnm_random_connected_graph(n, m, seed=trial)
            cls = classify_edges(g, 0)
            assert len(cls.back_edges) == g.m - (g.n - 1)
            assert len(cls.tree_edges) == g.n - 1

    def test_back_edges_are_ancestor_oriented(self):
        g = G.gnm_random_connected_graph(30, 80, seed=3)
        cls = classify_edges(g, 0)
        from repro.core.verify import tree_depths

        depth = tree_depths(cls.parent, 0)
        for desc, anc in cls.back_edges:
            assert depth[desc] > depth[anc]

    def test_cross_edge_in_bogus_tree_rejected(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        bogus = {0: None, 1: 0, 2: 0, 3: 1}  # (2,3) becomes a cross edge
        with pytest.raises(ValueError, match="cross edge"):
            classify_edges(g, 0, parent=bogus)

    def test_only_roots_component(self):
        g = Graph(6, [(0, 1), (1, 2), (2, 0), (4, 5)])
        cls = classify_edges(g, 0)
        assert len(cls.tree_edges) == 2
        assert len(cls.back_edges) == 1


class TestFundamentalCycles:
    def test_cycle_graph(self):
        g = G.cycle_graph(6)
        cycles = fundamental_cycles(g, 0)
        assert len(cycles) == 1
        assert sorted(cycles[0]) == list(range(6))

    def test_cycles_are_real_cycles(self):
        rng = random.Random(5)
        for trial in range(8):
            n = rng.randrange(4, 30)
            m = rng.randrange(n, min(2 * n, n * (n - 1) // 2) + 1)
            g = G.gnm_random_connected_graph(n, m, seed=100 + trial)
            for cyc in fundamental_cycles(g, 0):
                assert len(cyc) >= 3
                for a, b in zip(cyc, cyc[1:]):
                    assert g.has_edge(a, b)
                assert g.has_edge(cyc[-1], cyc[0])  # the closing back edge
                assert len(set(cyc)) == len(cyc)

    def test_basis_dimension_matches_networkx(self):
        g = G.gnm_random_connected_graph(40, 90, seed=7)
        h = nx.Graph()
        h.add_edges_from(g.edges)
        ours = fundamental_cycles(g, 0)
        theirs = nx.cycle_basis(h)
        assert len(ours) == len(theirs)  # both span the cycle space


class TestWithProvidedTree:
    def test_classify_with_sequential_tree(self):
        from repro.baselines.sequential import sequential_dfs

        g = G.gnm_random_connected_graph(25, 60, seed=9)
        parent = sequential_dfs(g, 0)
        cls = classify_edges(g, 0, parent=parent)
        assert len(cls.tree_edges) == 24
        assert len(cls.back_edges) == 60 - 24

    def test_fundamental_cycles_with_provided_tree(self):
        from repro.baselines.sequential import sequential_dfs

        g = G.cycle_graph(5)
        parent = sequential_dfs(g, 0)
        cycles = fundamental_cycles(g, 0, parent=parent)
        assert len(cycles) == 1
        assert sorted(cycles[0]) == list(range(5))
