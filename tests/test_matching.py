"""Tests for Luby matching/MIS and Cole–Vishkin coloring."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import generators as G
from repro.matching import (
    cole_vishkin_3color,
    is_maximal_matching,
    is_mis,
    luby_mis,
    maximal_matching,
    path_mis_deterministic,
)
from repro.pram import Tracker


class TestMaximalMatching:
    def test_empty(self):
        assert maximal_matching(Tracker(), 3, []) == []

    def test_single_edge(self):
        assert maximal_matching(Tracker(), 2, [(0, 1)]) == [0]

    def test_path_graph(self):
        g = G.path_graph(10)
        chosen = maximal_matching(Tracker(), g.n, g.edges, random.Random(0))
        assert is_maximal_matching(g.n, g.edges, chosen)

    def test_star_picks_exactly_one(self):
        g = G.star_graph(20)
        chosen = maximal_matching(Tracker(), g.n, g.edges, random.Random(1))
        assert len(chosen) == 1
        assert is_maximal_matching(g.n, g.edges, chosen)

    def test_complete_graph(self):
        g = G.complete_graph(9)
        chosen = maximal_matching(Tracker(), g.n, g.edges, random.Random(2))
        assert len(chosen) == 4
        assert is_maximal_matching(g.n, g.edges, chosen)

    def test_random_graphs_maximal(self):
        rng = random.Random(3)
        for _ in range(15):
            n = rng.randrange(2, 50)
            m = rng.randrange(0, min(100, n * (n - 1) // 2))
            g = G.gnm_random_graph(n, m, seed=rng.randrange(1 << 30))
            chosen = maximal_matching(
                Tracker(), g.n, g.edges, random.Random(rng.randrange(1 << 30))
            )
            assert is_maximal_matching(g.n, g.edges, chosen)

    @given(st.integers(2, 30), st.integers(0, 50), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_property_maximal(self, n, m, seed):
        m = min(m, n * (n - 1) // 2)
        g = G.gnm_random_graph(n, m, seed=seed)
        chosen = maximal_matching(Tracker(), g.n, g.edges, random.Random(seed + 1))
        assert is_maximal_matching(g.n, g.edges, chosen)

    def test_work_near_linear_in_edges(self):
        g = G.gnm_random_connected_graph(256, 1024, seed=7)
        t = Tracker()
        maximal_matching(t, g.n, g.edges, random.Random(7))
        logn = g.n.bit_length()
        assert t.work <= 40 * g.m * logn
        # polylog depth: rounds (log) x per-round span (log)
        assert t.span <= 80 * logn * logn


class TestLubyMIS:
    def test_empty_graph_all_in(self):
        assert luby_mis(Tracker(), 3, [[], [], []]) == {0, 1, 2}

    def test_triangle(self):
        adj = [[1, 2], [0, 2], [0, 1]]
        mis = luby_mis(Tracker(), 3, adj, random.Random(0))
        assert len(mis) == 1
        assert is_mis(adj, mis)

    def test_random_graphs_valid(self):
        rng = random.Random(5)
        for _ in range(15):
            n = rng.randrange(1, 40)
            m = rng.randrange(0, min(80, n * (n - 1) // 2) + 1)
            g = G.gnm_random_graph(n, m, seed=rng.randrange(1 << 30))
            mis = luby_mis(Tracker(), g.n, g.adj, random.Random(rng.randrange(1 << 30)))
            assert is_mis(g.adj, mis)

    def test_path_mis_size(self):
        g = G.path_graph(30)
        mis = luby_mis(Tracker(), g.n, g.adj, random.Random(4))
        assert is_mis(g.adj, mis)
        assert len(mis) >= 10  # MIS on a path covers >= 1/3 of vertices


def build_paths(sizes):
    vertices, prev_of = [], {}
    nid = 0
    for size in sizes:
        prev = None
        for _ in range(size):
            vertices.append(nid)
            prev_of[nid] = prev
            prev = nid
            nid += 1
    return vertices, prev_of


class TestColeVishkin:
    def is_proper(self, vertices, prev_of, colors):
        vset = set(vertices)
        for v in vertices:
            p = prev_of.get(v)
            if p is not None and p in vset:
                if colors[v] == colors[p]:
                    return False
        return True

    def test_three_colors_on_long_path(self):
        vs, prv = build_paths([100])
        colors = cole_vishkin_3color(Tracker(), vs, prv)
        assert set(colors.values()) <= {0, 1, 2}
        assert self.is_proper(vs, prv, colors)

    def test_multiple_paths(self):
        vs, prv = build_paths([1, 2, 17, 33])
        colors = cole_vishkin_3color(Tracker(), vs, prv)
        assert set(colors.values()) <= {0, 1, 2}
        assert self.is_proper(vs, prv, colors)

    def test_empty(self):
        assert cole_vishkin_3color(Tracker(), [], {}) == {}

    def test_span_is_polyloglog(self):
        # O(log* n) recoloring rounds: span far below log n rounds' worth
        vs, prv = build_paths([4096])
        t = Tracker()
        cole_vishkin_3color(t, vs, prv)
        # each round costs ~O(log n) span from forking; log* 4096 ~ 3 rounds + 3 shifts
        assert t.span <= 40 * (len(vs).bit_length() + 2)

    @given(st.lists(st.integers(1, 30), min_size=1, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_property_proper_coloring(self, sizes):
        vs, prv = build_paths(sizes)
        colors = cole_vishkin_3color(Tracker(), vs, prv)
        assert set(colors.values()) <= {0, 1, 2}
        assert self.is_proper(vs, prv, colors)


class TestDeterministicPathMIS:
    def check(self, vertices, prev_of, mis):
        vset = set(vertices)
        nxt = {}
        for v in vertices:
            p = prev_of.get(v)
            if p is not None and p in vset:
                nxt[p] = v
        for v in mis:
            p = prev_of.get(v)
            if p is not None and p in vset:
                assert p not in mis
            if v in nxt:
                assert nxt[v] not in mis
        # maximality
        for v in vertices:
            if v in mis:
                continue
            p = prev_of.get(v)
            nbrs = []
            if p is not None and p in vset:
                nbrs.append(p)
            if v in nxt:
                nbrs.append(nxt[v])
            assert any(w in mis for w in nbrs), f"vertex {v} could join the MIS"

    def test_path_mis(self):
        vs, prv = build_paths([50])
        mis = path_mis_deterministic(Tracker(), vs, prv)
        self.check(vs, prv, mis)
        assert len(mis) >= len(vs) // 3

    def test_deterministic(self):
        vs, prv = build_paths([64])
        a = path_mis_deterministic(Tracker(), vs, prv)
        b = path_mis_deterministic(Tracker(), vs, prv)
        assert a == b

    @given(st.lists(st.integers(1, 25), min_size=1, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_property_valid_mis(self, sizes):
        vs, prv = build_paths(sizes)
        mis = path_mis_deterministic(Tracker(), vs, prv)
        self.check(vs, prv, mis)
