"""Tests for the analysis / experiment-harness utilities."""

import math

import pytest

from repro.analysis import (
    Measurement,
    format_table,
    geometric_sizes,
    loglog_slope,
    polylog_normalized,
    run_aa87_model,
    run_gpv_dfs,
    run_parallel_dfs,
    run_sequential_dfs,
    sweep,
)
from repro.graph import generators as G


class TestLogLogSlope:
    def test_linear(self):
        xs = [10, 100, 1000]
        assert abs(loglog_slope(xs, [3 * x for x in xs]) - 1.0) < 1e-9

    def test_quadratic(self):
        xs = [10, 100, 1000]
        assert abs(loglog_slope(xs, [x * x for x in xs]) - 2.0) < 1e-9

    def test_sqrt(self):
        xs = [4, 16, 64, 256]
        assert abs(loglog_slope(xs, [math.sqrt(x) for x in xs]) - 0.5) < 1e-9

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])

    def test_constant_x_rejected(self):
        with pytest.raises(ValueError):
            loglog_slope([5, 5], [1, 2])


class TestNormalization:
    def test_exact_law_flat(self):
        xs = [16.0, 256.0, 4096.0]
        ys = [x**0.5 * math.log2(x) ** 3 for x in xs]
        norm = polylog_normalized(xs, ys, 0.5, 3.0)
        assert max(norm) - min(norm) < 1e-9

    def test_geometric_sizes(self):
        assert geometric_sizes(256, 2048) == [256, 512, 1024, 2048]
        assert geometric_sizes(100, 150) == [100]
        assert geometric_sizes(10, 1000, ratio=4) == [10, 40, 160, 640]


class TestMeasurement:
    def test_derived_fields(self):
        m = Measurement("x", n=100, m=300, work=4000, span=50)
        assert m.work_per_edge == 10.0
        assert m.span_per_sqrt_n == 5.0

    def test_format_table(self):
        out = format_table(["a", "bb"], [(1, 2.5), (30, 4.125)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "4.125" in lines[3]


class TestRunners:
    def test_all_runners_return_measurements(self):
        g = G.gnm_random_connected_graph(50, 150, seed=0)
        for run in (run_parallel_dfs, run_sequential_dfs, run_gpv_dfs, run_aa87_model):
            m = run(g)
            assert m.n == 50 and m.m == 150
            assert m.work > 0 and m.span > 0

    def test_sweep_averages_seeds(self):
        ms = sweep("gnm", [64, 128], algorithm="sequential", seeds=(0, 1))
        assert [m.n for m in ms] == [64, 128]
        assert all(m.work > 0 for m in ms)

    def test_sweep_unknown_algorithm(self):
        with pytest.raises(KeyError):
            sweep("gnm", [64], algorithm="nope")
