"""Tests for the biconnectivity application, cross-validated vs networkx."""

import random

import networkx as nx

from repro.apps.biconnectivity import biconnectivity, low_link_sweep
from repro.baselines.sequential import sequential_dfs
from repro.graph import Graph
from repro.graph import generators as G
from repro.pram import Tracker


def to_nx(g: Graph) -> nx.Graph:
    h = nx.Graph()
    h.add_nodes_from(range(g.n))
    h.add_edges_from(g.edges)
    return h


def nx_truth(g: Graph, component_of: int):
    h = to_nx(g)
    comp = nx.node_connected_component(h, component_of)
    sub = h.subgraph(comp)
    arts = set(nx.articulation_points(sub))
    bridges = {tuple(sorted(e)) for e in nx.bridges(sub)}
    comps = {
        frozenset(tuple(sorted(e)) for e in c)
        for c in nx.biconnected_component_edges(sub)
    }
    return arts, bridges, comps


def check_graph(g: Graph, root=0, seed=0):
    res = biconnectivity(g, root, rng=random.Random(seed))
    arts, bridges, comps = nx_truth(g, root)
    assert res.articulation_points == arts
    assert res.bridges == bridges
    assert {frozenset(c) for c in res.components} == comps


class TestAgainstNetworkx:
    def test_path(self):
        check_graph(G.path_graph(12))

    def test_cycle_has_no_cuts(self):
        check_graph(G.cycle_graph(9))

    def test_star_center_is_cut(self):
        g = G.star_graph(8)
        res = biconnectivity(g, 0)
        assert res.articulation_points == {0}
        assert len(res.bridges) == 7

    def test_barbell(self):
        check_graph(G.barbell_graph(5, 4))

    def test_lollipop(self):
        check_graph(G.lollipop_graph(6, 8))

    def test_grid_is_biconnected(self):
        g = G.grid_graph(5, 5)
        res = biconnectivity(g, 0)
        assert res.articulation_points == set()
        assert res.bridges == set()
        assert len(res.components) == 1

    def test_caterpillar(self):
        check_graph(G.caterpillar_graph(8, 2))

    def test_random_graphs(self):
        rng = random.Random(3)
        for trial in range(12):
            n = rng.randrange(4, 50)
            m = rng.randrange(n - 1, min(2 * n, n * (n - 1) // 2) + 1)
            g = G.gnm_random_connected_graph(n, m, seed=trial)
            check_graph(g, seed=trial)

    def test_community_graph(self):
        check_graph(G.two_level_community_graph(100, communities=5, seed=1))

    def test_tree_every_internal_is_cut(self):
        g = G.random_tree(30, seed=2)
        res = biconnectivity(g, 0)
        internal = {v for v in range(30) if g.degree(v) >= 2}
        assert res.articulation_points == internal
        assert len(res.bridges) == 29


class TestSweepOverGivenTree:
    def test_works_on_sequential_tree_too(self):
        g = G.gnm_random_connected_graph(40, 100, seed=5)
        parent = sequential_dfs(g, 0)
        res = low_link_sweep(g, 0, parent)
        arts, bridges, _ = nx_truth(g, 0)
        assert res.articulation_points == arts
        assert res.bridges == bridges

    def test_root_with_one_child_not_cut(self):
        g = G.path_graph(5)
        parent = sequential_dfs(g, 0)
        res = low_link_sweep(g, 0, parent)
        assert 0 not in res.articulation_points

    def test_cost_charged(self):
        g = G.gnm_random_connected_graph(200, 600, seed=6)
        t = Tracker()
        parent = sequential_dfs(g, 0, Tracker())
        t.reset()
        low_link_sweep(g, 0, parent, t)
        assert t.work > 0
        # the sweep is linear work
        assert t.work <= 20 * (g.n + g.m)


class TestDisconnected:
    def test_only_roots_component(self):
        g = Graph(8, [(0, 1), (1, 2), (2, 0), (4, 5), (5, 6)])
        res = biconnectivity(g, 0)
        assert res.articulation_points == set()
        assert len(res.components) == 1
        res2 = biconnectivity(g, 4)
        assert res2.articulation_points == {5}
