"""Unit tests for the Graph representation."""

import pytest

from repro.graph import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph(0)
        assert g.n == 0 and g.m == 0

    def test_basic(self):
        g = Graph(4, [(0, 1), (1, 2), (3, 1)])
        assert g.n == 4
        assert g.m == 3
        assert sorted(g.neighbors(1)) == [0, 2, 3]
        assert g.degree(1) == 3
        assert g.degree(0) == 1

    def test_canonical_edge_orientation(self):
        g = Graph(3, [(2, 0)])
        assert g.edges == [(0, 2)]

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(3, [(1, 1)])

    def test_rejects_duplicate(self):
        with pytest.raises(ValueError, match="duplicate"):
            Graph(3, [(0, 1), (1, 0)])

    def test_allow_multi_dedups(self):
        g = Graph(3, [(0, 1), (1, 0)], allow_multi=True)
        assert g.m == 1

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(2, [(0, 2)])

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_from_edges_sizes_to_max(self):
        g = Graph.from_edges([(0, 5), (2, 3)])
        assert g.n == 6


class TestQueries:
    def test_has_edge_both_orientations(self):
        g = Graph(3, [(0, 2)])
        assert g.has_edge(0, 2) and g.has_edge(2, 0)
        assert not g.has_edge(0, 1)

    def test_edge_ids_consistent(self):
        g = Graph(4, [(0, 1), (2, 3), (1, 2)])
        for v in range(4):
            for nbr, eid in zip(g.adj[v], g.adj_eids[v]):
                u, w = g.edge_endpoints(eid)
                assert {u, w} == {v, nbr}

    def test_other_endpoint(self):
        g = Graph(3, [(0, 2)])
        assert g.other_endpoint(0, 0) == 2
        assert g.other_endpoint(0, 2) == 0
        with pytest.raises(ValueError):
            g.other_endpoint(0, 1)

    def test_iteration(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert list(g) == [(0, 1), (1, 2)]
        assert list(g.vertices()) == [0, 1, 2]


class TestTransforms:
    def test_subgraph(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        h, mapping = g.subgraph([1, 2, 3])
        assert h.n == 3
        assert h.m == 2
        assert h.has_edge(mapping[1], mapping[2])
        assert h.has_edge(mapping[2], mapping[3])

    def test_relabeled(self):
        g = Graph(3, [(0, 1)])
        h = g.relabeled([2, 0, 1])
        assert h.has_edge(2, 0)
        assert h.m == 1

    def test_relabeled_rejects_non_permutation(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.relabeled([0, 0, 1])


class TestSequentialHelpers:
    def test_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        comps = sorted(sorted(c) for c in g.connected_components_seq())
        assert comps == [[0, 1], [2, 3], [4]]

    def test_is_connected(self):
        assert Graph(3, [(0, 1), (1, 2)]).is_connected()
        assert not Graph(3, [(0, 1)]).is_connected()
        assert Graph(0).is_connected()
        assert Graph(1).is_connected()
