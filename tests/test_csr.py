"""Tests for the numpy CSR graph view."""

import random


from repro import parallel_dfs
from repro.baselines.sequential import sequential_dfs
from repro.core.verify import is_valid_dfs_tree
from repro.graph import Graph
from repro.graph import generators as G
from repro.graph.csr import CSRGraph


class TestLayout:
    def test_neighbors_match(self):
        g = G.gnm_random_connected_graph(50, 120, seed=1)
        c = CSRGraph(g)
        for v in range(g.n):
            assert sorted(c.neighbors(v).tolist()) == sorted(g.adj[v])

    def test_degrees(self):
        g = G.star_graph(10)
        c = CSRGraph(g)
        assert c.degree(0) == 9
        assert c.degrees().tolist() == [9] + [1] * 9

    def test_empty_graph(self):
        c = CSRGraph(Graph(3))
        assert c.degrees().tolist() == [0, 0, 0]
        assert c.m == 0

    def test_edge_arrays_canonical(self):
        g = Graph(4, [(2, 1), (3, 0)])
        c = CSRGraph(g)
        assert (c.edge_u < c.edge_v).all()
        assert c.edge_u.tolist() == [1, 0]


class TestVectorizedOracle:
    def test_agrees_with_reference_oracle_on_valid(self):
        rng = random.Random(2)
        for trial in range(15):
            n = rng.randrange(2, 80)
            m = rng.randrange(n - 1, min(3 * n, n * (n - 1) // 2) + 1)
            g = G.gnm_random_connected_graph(n, m, seed=trial)
            parent = sequential_dfs(g, 0)
            assert CSRGraph(g).dfs_tree_valid(0, parent)

    def test_rejects_bfs_cross_edges(self):
        g = G.cycle_graph(6)
        bfs = {0: None, 1: 0, 5: 0, 2: 1, 4: 5, 3: 2}
        assert not CSRGraph(g).dfs_tree_valid(0, bfs)
        assert not is_valid_dfs_tree(g, 0, bfs)

    def test_rejects_non_spanning(self):
        g = G.path_graph(4)
        assert not CSRGraph(g).dfs_tree_valid(0, {0: None, 1: 0})

    def test_rejects_missing_root(self):
        g = G.path_graph(3)
        assert not CSRGraph(g).dfs_tree_valid(0, {1: None, 2: 1})

    def test_rejects_fake_tree_edge(self):
        g = G.path_graph(4)
        assert not CSRGraph(g).dfs_tree_valid(
            0, {0: None, 1: 0, 2: 1, 3: 1}
        )

    def test_rejects_cycle_in_parent_map(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (1, 3)])
        assert not CSRGraph(g).dfs_tree_valid(0, {0: None, 1: 0, 2: 3, 3: 2})

    def test_component_restriction(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4)])
        parent = sequential_dfs(g, 0)
        assert CSRGraph(g).dfs_tree_valid(0, parent)

    def test_validates_parallel_dfs_at_scale(self):
        g = G.gnm_random_connected_graph(1500, 4500, seed=3)
        res = parallel_dfs(g, 0)
        assert CSRGraph(g).dfs_tree_valid(0, res.parent)

    def test_random_agreement_between_oracles(self):
        # the two oracles must agree on mutated (possibly invalid) trees
        rng = random.Random(5)
        g = G.gnm_random_connected_graph(30, 80, seed=5)
        c = CSRGraph(g)
        for trial in range(20):
            parent = dict(sequential_dfs(g, 0))
            # mutate: repoint one non-root vertex at a random neighbor
            v = rng.randrange(1, 30)
            parent[v] = rng.choice(g.adj[v])
            ref = is_valid_dfs_tree(g, 0, parent)
            fast = c.dfs_tree_valid(0, parent)
            assert ref == fast, f"oracles disagree on trial {trial}"
