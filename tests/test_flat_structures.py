"""Unit coverage for the flat (array-native) structure twins.

The differential fuzzer (``repro.analysis.fuzz``) exercises the flat
absorption structure against the tracked mirrors on random cases; the
tests here pin the *deliberate* edge cases — empty forests, singleton
components, all-separator components, deleting an entire tree in one
batch — and the Lemma 4.5 CSR twin's lockstep with the tournament
structure, including the ``from_csr`` construction ``merge_paths`` uses
for the contracted graph.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.analysis.fuzz import check_ops_case
from repro.graph.generators import gnm_random_connected_graph
from repro.graph.graph import Graph
from repro.pram import Tracker
from repro.structures.adjacency_query import ActiveNeighborStructure
from repro.structures.flat_absorb import FlatAbsorptionStructure, FlatForest
from repro.structures.flat_neighbors import FlatActiveNeighborStructure


def _csr_of(g: Graph):
    """CSR arrays in ``Graph.adj`` (edge-id) order — the canonical
    adjacency layout ``FlatActiveNeighborStructure.__init__`` builds."""
    deg = np.fromiter((len(a) for a in g.adj), dtype=np.int64, count=g.n)
    indptr = np.zeros(g.n + 1, dtype=np.int64)
    np.cumsum(deg, out=indptr[1:])
    if g.m:
        nbr = np.concatenate(
            [np.asarray(a, dtype=np.int64) for a in g.adj if a]
        )
        eids = np.concatenate(
            [np.asarray(a, dtype=np.int64) for a in g.adj_eids if a]
        )
    else:
        nbr = np.empty(0, dtype=np.int64)
        eids = np.empty(0, dtype=np.int64)
    return indptr, nbr, eids


class TestFlatNeighborsDifferential:
    """FlatActiveNeighborStructure must answer exactly like the
    tournament-tree structure under any deactivate/query schedule."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_lockstep_random_schedules(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(8, 40)
        g = gnm_random_connected_graph(n, min(2 * n, n * (n - 1) // 2), seed=seed)
        ref = ActiveNeighborStructure(g, tracker=Tracker())
        flat = FlatActiveNeighborStructure(g, tracker=Tracker())
        alive = set(range(n))
        for _ in range(12):
            if rng.random() < 0.5 and len(alive) > 2:
                k = rng.randrange(1, max(2, len(alive) // 3))
                batch = rng.sample(sorted(alive), k)
                alive -= set(batch)
                ref.make_inactive(batch)
                flat.make_inactive(batch)
            probes = rng.sample(range(n), min(n, 5))
            t_count = rng.randrange(0, 5)
            assert ref.query(probes, t_count) == flat.query(probes, t_count)
            for v in probes:
                assert ref.is_active(v) == flat.is_active(v)
                assert ref.n_active_neighbors(v) == flat.n_active_neighbors(v)

    def test_from_csr_matches_graph_construction(self):
        g = gnm_random_connected_graph(30, 60, seed=5)
        a = FlatActiveNeighborStructure(g, tracker=Tracker())
        b = FlatActiveNeighborStructure.from_csr(
            g.n, *_csr_of(g), tracker=Tracker()
        )
        b.make_inactive([3, 7, 11])
        a.make_inactive([3, 7, 11])
        probes = list(range(g.n))
        for t_count in (0, 1, 2, 4, 100):
            assert a.query(probes, t_count) == b.query(probes, t_count)
        assert a._n_active.tolist() == b._n_active.tolist()

    def test_double_deactivation_rejected(self):
        g = gnm_random_connected_graph(10, 15, seed=1)
        flat = FlatActiveNeighborStructure(g, tracker=Tracker())
        flat.make_inactive([4])
        with pytest.raises(ValueError):
            flat.make_inactive([4])

    def test_query_rejects_negative_t(self):
        g = gnm_random_connected_graph(6, 7, seed=0)
        flat = FlatActiveNeighborStructure(g, tracker=Tracker())
        with pytest.raises(ValueError):
            flat.query([0], -1)

    def test_empty_queries_and_exhausted_vertices(self):
        g = gnm_random_connected_graph(8, 10, seed=2)
        flat = FlatActiveNeighborStructure(g, tracker=Tracker())
        assert flat.query([], 3) == []
        assert flat.query([0, 1], 0) == [[], []]
        flat.make_inactive(list(range(1, 8)))
        # vertex 0 is still active but all its neighbors are gone
        assert flat.query([0], 4) == [[]]
        assert flat.n_active_neighbors(0) == 0


class TestFlatForestEdgeCases:
    """Deliberate structural corners of the flat Lemma 5.1/6.x stack.

    ``check_ops_case`` runs the op sequence through all four
    (structure x kernel) backend pairs plus the brute-force model, so
    each case here is a full lockstep assertion, not a smoke test."""

    def test_empty_forest(self):
        # no edges at all: every vertex is a singleton tree
        g = Graph(6, [])
        check_ops_case(g, [
            ("flag", [0, 2, 4]),
            ("witness", 1, 3, 5),
            ("delete", [0, 1], [2]),
            ("flag", [1]),
            ("delete", [2], []),
        ])

    def test_singleton_components_after_deletions(self):
        # a path; deleting interior vertices leaves singletons behind
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        check_ops_case(g, [
            ("flag", [0, 1, 2, 3, 4]),
            ("witness", 2, 0, 3),
            ("delete", [1, 3], [1, 2]),
            ("witness", 0, 1, 4),
            ("delete", [2], [0]),
        ])

    def test_all_separator_component(self):
        # every vertex flagged: find_path_s2p must truncate immediately
        g = gnm_random_connected_graph(9, 14, seed=3)
        ops = [("flag", list(range(9)))]
        ops += [("witness", i, i + 1, i % 7) for i in range(6)]
        ops += [("delete", [0, 1], [3]), ("delete", [2, 3, 4], [1, 5])]
        check_ops_case(g, ops)

    def test_batch_deleting_an_entire_tour(self):
        # one batch removes every tree edge of a component
        g = Graph(6, [(0, 1), (0, 2), (1, 3), (2, 4), (3, 5)])
        f = FlatForest(g, tracker=Tracker(), kernel_backend="numpy")
        changes = f.batch_delete(list(range(g.m)))
        assert [c.kind for c in changes] == ["cut"] * g.m
        for v in range(6):
            assert f.component_rep(v) == v
            assert int(f.parent[v]) == -1
        assert f.spanning_forest_edges() == []
        f.check_invariants()

    def test_star_center_deletion_via_ops(self):
        # deleting a star center in one batch splits into all-singletons
        g = Graph(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        check_ops_case(g, [
            ("flag", [0, 1, 2, 3, 4]),
            ("witness", 4, 2, 6),
            ("delete", [0], [4]),
        ])

    def test_find_path_same_vertex_flagged(self):
        g = Graph(3, [(0, 1), (1, 2)])
        s = FlatAbsorptionStructure(g, tracker=Tracker())
        s.set_separator([2])
        assert s.find_path_s2p(2, 2) == [2]
        # path walks up to the first flagged vertex and stops there
        assert s.find_path_s2p(2, 0) == [0, 1, 2]
        s.set_separator([1])
        assert s.find_path_s2p(2, 0) == [0, 1]

    def test_disconnected_query_rejected(self):
        g = Graph(4, [(0, 1), (2, 3)])
        s = FlatAbsorptionStructure(g, tracker=Tracker())
        s.set_separator([0])
        with pytest.raises(ValueError):
            s.find_path_s2p(0, 3)
