"""Tests for the rake-and-compress forest (Lemma 6.2, Section 6.4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.rc_tree import RCForest


def build_forest(n, edges, **kw):
    f = RCForest(n, **kw)
    f.batch_update([], list(edges))
    return f


def ref_path(edges, u, v):
    """Oracle tree path via BFS parents."""
    adj = {}
    for a, b in edges:
        adj.setdefault(a, []).append(b)
        adj.setdefault(b, []).append(a)
    parent = {u: None}
    queue = [u]
    while queue:
        x = queue.pop(0)
        for w in adj.get(x, []):
            if w not in parent:
                parent[w] = x
                queue.append(w)
    if v not in parent:
        return None
    out = [v]
    while parent[out[-1]] is not None:
        out.append(parent[out[-1]])
    return list(reversed(out))


class TestStaticConstruction:
    def test_empty_forest_roots(self):
        f = RCForest(4)
        assert len(f.roots()) == 4
        f.check_invariants()

    def test_single_edge(self):
        f = build_forest(2, [(0, 1)])
        assert len(f.roots()) == 1
        assert f.connected(0, 1)
        f.check_invariants()

    def test_path_graph_hierarchy(self):
        f = build_forest(10, [(i, i + 1) for i in range(9)])
        assert len(f.roots()) == 1
        f.check_invariants()

    def test_star_hierarchy(self):
        f = build_forest(12, [(0, i) for i in range(1, 12)])
        assert len(f.roots()) == 1
        f.check_invariants()

    def test_figure2_example_tree(self):
        # the paper's Figure 2 tree: vertices {A..F} = {0..5}
        # edges: per the figure, a small tree with leaves A, E, F
        # A-B, B-C, C-D, D-E, D-F
        f = build_forest(6, [(0, 1), (1, 2), (2, 3), (3, 4), (3, 5)])
        assert len(f.roots()) == 1
        f.check_invariants()
        assert f.levels_used() <= 8

    def test_levels_logarithmic(self):
        n = 512
        f = build_forest(n, [(i, i + 1) for i in range(n - 1)])
        # a path should collapse in O(log n) levels w.h.p.
        assert f.levels_used() <= 6 * n.bit_length()
        f.check_invariants()

    def test_two_components(self):
        f = build_forest(6, [(0, 1), (1, 2), (3, 4)])
        assert len(f.roots()) == 3  # {0,1,2}, {3,4}, {5}
        assert f.connected(0, 2)
        assert not f.connected(2, 3)


class TestDynamicUpdates:
    def test_link_then_cut_roundtrip(self):
        f = RCForest(5)
        f.link(0, 1)
        f.link(1, 2)
        f.check_invariants()
        assert f.connected(0, 2)
        f.cut(0, 1)
        f.check_invariants()
        assert not f.connected(0, 2)
        assert f.connected(1, 2)

    def test_cut_missing_raises(self):
        f = RCForest(3)
        with pytest.raises(ValueError):
            f.cut(0, 1)

    def test_duplicate_link_raises(self):
        f = RCForest(3)
        f.link(0, 1)
        with pytest.raises(ValueError):
            f.link(1, 0)

    def test_self_loop_raises(self):
        with pytest.raises(ValueError):
            RCForest(2).link(1, 1)

    def test_batch_update(self):
        f = build_forest(8, [(i, i + 1) for i in range(7)])
        f.batch_update([(3, 4)], [(0, 7)])
        f.check_invariants()
        assert f.connected(3, 4)  # still connected via the new edge 0-7
        assert sorted(f.edge_set()) == sorted(
            [(i, i + 1) for i in range(7) if i != 3] + [(0, 7)]
        )

    def test_random_churn_keeps_invariants(self):
        rng = random.Random(3)
        n = 24
        f = RCForest(n)
        edges = set()
        for step in range(120):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            if f.connected(u, v):
                if edges and rng.random() < 0.6:
                    a, b = rng.choice(sorted(edges))
                    f.cut(a, b)
                    edges.discard((a, b))
            else:
                f.link(u, v)
                edges.add((min(u, v), max(u, v)))
            if step % 20 == 19:
                f.check_invariants()
                assert f.edge_set() == edges
        f.check_invariants()

    @given(st.integers(2, 14), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_random_ops(self, n, seed):
        rng = random.Random(seed)
        f = RCForest(n, seed=seed & 0xFFFF)
        edges = set()
        for _ in range(30):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            if f.connected(u, v):
                if edges and rng.random() < 0.5:
                    a, b = rng.choice(sorted(edges))
                    f.cut(a, b)
                    edges.discard((a, b))
            else:
                f.link(u, v)
                edges.add((min(u, v), max(u, v)))
        f.check_invariants()
        assert f.edge_set() == edges


class TestPathQueries:
    def test_path_on_path_graph(self):
        f = build_forest(6, [(i, i + 1) for i in range(5)])
        assert f.path(0, 5) == [0, 1, 2, 3, 4, 5]
        assert f.path(5, 0) == [5, 4, 3, 2, 1, 0]
        assert f.path(2, 2) == [2]
        assert f.path(2, 3) == [2, 3]

    def test_path_in_star(self):
        f = build_forest(6, [(0, i) for i in range(1, 6)])
        assert f.path(1, 2) == [1, 0, 2]
        assert f.path(0, 3) == [0, 3]

    def test_path_disconnected_raises(self):
        f = build_forest(4, [(0, 1)])
        with pytest.raises(ValueError):
            f.path(0, 3)

    def test_random_trees_match_oracle(self):
        rng = random.Random(5)
        for trial in range(12):
            n = rng.randrange(2, 40)
            edges = []
            for v in range(1, n):
                edges.append((rng.randrange(v), v))
            f = build_forest(n, edges, seed=trial)
            for _ in range(8):
                u, v = rng.randrange(n), rng.randrange(n)
                assert f.path(u, v) == ref_path(edges, u, v)

    def test_path_after_updates(self):
        rng = random.Random(8)
        n = 20
        f = RCForest(n)
        edges = set()
        for _ in range(80):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            if f.connected(u, v):
                p = f.path(u, v)
                assert p == ref_path(sorted(edges), u, v)
                if edges and rng.random() < 0.5:
                    a, b = rng.choice(sorted(edges))
                    f.cut(a, b)
                    edges.discard((a, b))
            else:
                f.link(u, v)
                edges.add((min(u, v), max(u, v)))

    def test_path_work_proportional_to_distance(self):
        n = 1024
        f = build_forest(n, [(i, i + 1) for i in range(n - 1)])
        t = f.t
        t.reset()
        f.path(0, 8)
        short_work = t.work
        t.reset()
        f.path(0, n - 1)
        long_work = t.work
        logn = n.bit_length()
        assert short_work <= 80 * (8 + logn) * logn
        assert long_work >= n  # must at least write the long path
        assert short_work * 8 < long_work  # near-linear separation


class TestFlagQueries:
    def test_prefix_to_first_flagged_on_path(self):
        f = build_forest(8, [(i, i + 1) for i in range(7)])
        f.set_flag(5, True)
        assert f.path_prefix_to_first_flagged(0, 5) == [0, 1, 2, 3, 4, 5]
        assert f.path_prefix_to_first_flagged(7, 5) == [7, 6, 5]
        assert f.path_prefix_to_first_flagged(5, 5) == [5]

    def test_nearest_flag_wins(self):
        f = build_forest(10, [(i, i + 1) for i in range(9)])
        f.set_flag(3, True)
        f.set_flag(7, True)
        p = f.path_prefix_to_first_flagged(5, 0)
        # from 5 the nearest flagged vertex is 3 or 7 (both distance 2)
        assert p[0] == 5
        assert p[-1] in (3, 7)
        assert all(not f.get_flag(x) for x in p[:-1])

    def test_no_flags_returns_none(self):
        f = build_forest(4, [(0, 1), (1, 2)])
        assert f.path_prefix_to_first_flagged(0, 2) is None

    def test_flags_in_branched_tree(self):
        # star with flagged leaf: path must route through the center
        f = build_forest(7, [(0, i) for i in range(1, 7)])
        f.set_flag(6, True)
        p = f.path_prefix_to_first_flagged(1, 6)
        assert p == [1, 0, 6]

    def test_flag_clear_and_reset(self):
        f = build_forest(5, [(i, i + 1) for i in range(4)])
        f.set_flag(4, True)
        f.set_flag(4, False)
        assert f.path_prefix_to_first_flagged(0, 4) is None
        f.set_flag(2, True)
        assert f.path_prefix_to_first_flagged(0, 4) == [0, 1, 2]
        f.check_invariants()

    def test_flags_survive_updates(self):
        f = build_forest(8, [(i, i + 1) for i in range(7)])
        f.set_flag(6, True)
        f.cut(2, 3)
        f.link(2, 3)
        f.check_invariants()
        assert f.path_prefix_to_first_flagged(0, 6)[-1] == 6

    def test_prefix_work_independent_of_far_flag(self):
        # prefix query work must scale with the prefix, not with d(v, q)
        n = 2048
        f = build_forest(n, [(i, i + 1) for i in range(n - 1)])
        f.set_flag(4, True)
        f.set_flag(n - 1, True)
        t = f.t
        t.reset()
        p = f.path_prefix_to_first_flagged(0, n - 1)
        assert p == [0, 1, 2, 3, 4]
        logn = n.bit_length()
        assert t.work <= 100 * (len(p) + logn) * logn

    @given(st.integers(3, 24), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_prefix_correctness(self, n, seed):
        rng = random.Random(seed)
        edges = [(rng.randrange(v), v) for v in range(1, n)]
        f = build_forest(n, edges, seed=seed & 0xFFFF)
        flags = set(rng.sample(range(n), rng.randrange(1, n)))
        for v in flags:
            f.set_flag(v, True)
        start = rng.randrange(n)
        target = rng.choice(sorted(flags))
        p = f.path_prefix_to_first_flagged(start, target)
        assert p is not None
        assert p[0] == start
        assert p[-1] in flags
        assert all(x not in flags for x in p[:-1])
        # p is a genuine tree path
        assert p == ref_path(edges, start, p[-1])
