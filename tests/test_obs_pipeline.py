"""End-to-end observability: tracing must not perturb the pipeline.

The two hard acceptance properties of the tracing layer, checked on a
real (small) DFS run:

* **lockstep safety** — with tracing active, ``parallel_dfs`` returns
  byte-identical trees on both kernel backends, with tracked work/span
  totals identical to the untraced run;
* **faithful exports** — the traced run yields a schema-valid Chrome
  trace with the expected nested phase/round spans, per-span tracked
  deltas that sum consistently, live metrics, and byte-identical export
  files under an injected fixed clock.

The disabled-mode wall-clock guard lives in ``test_obs_overhead.py``.
"""

import json
import random

import pytest

from repro.analysis.trace import main as trace_main
from repro.analysis.trace import trace_dfs, write_exports
from repro.core.dfs import parallel_dfs
from repro.graph import generators as G
from repro.obs.export import validate_trace_events
from repro.pram.tracker import Tracker

N, M, GRAPH_SEED, DFS_SEED = 300, 600, 3, 9


def _graph():
    return G.gnm_random_connected_graph(N, M, seed=GRAPH_SEED)


def _untraced(kb):
    t = Tracker()
    res = parallel_dfs(
        _graph(), 0, tracker=t,
        rng=random.Random(DFS_SEED), kernel_backend=kb,
    )
    return res, t


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


class TestLockstepWithTracing:
    @pytest.mark.parametrize("kb", ["tracked", "numpy"])
    def test_tracing_does_not_perturb_tree_or_costs(self, kb):
        ref, t_ref = _untraced(kb)
        res, trc, _ = trace_dfs(_graph(), seed=DFS_SEED, kernel_backend=kb)
        assert res.parent == ref.parent
        assert res.depth == ref.depth
        assert (trc.tracker.work, trc.tracker.span) == (t_ref.work, t_ref.span)

    def test_backends_agree_under_tracing(self):
        res_t, _, _ = trace_dfs(_graph(), seed=DFS_SEED, kernel_backend="tracked")
        res_n, _, _ = trace_dfs(_graph(), seed=DFS_SEED, kernel_backend="numpy")
        assert res_t.parent == res_n.parent
        assert res_t.depth == res_n.depth


class TestTracedRunContents:
    @pytest.fixture(scope="class")
    def traced(self):
        return trace_dfs(_graph(), seed=DFS_SEED, kernel_backend="numpy")

    def test_expected_span_taxonomy(self, traced):
        _, trc, _ = traced
        names = {s.name for s in trc.spans}
        assert {
            "parallel_dfs",
            "dfs.solve",
            "phase:components",
            "phase:separator",
            "phase:absorb",
            "separator.round",
            "absorb.iteration",
        } <= names

    def test_per_span_tracked_deltas_are_consistent(self, traced):
        _, trc, _ = traced
        roots = trc.roots()
        assert [r.name for r in roots] == ["parallel_dfs"]
        root = roots[0]
        assert root.work_delta == trc.tracker.work
        assert root.span_delta == trc.tracker.span
        for s in trc.spans:
            assert s.work_delta is not None and s.work_delta >= 0
            assert s.span_delta is not None and s.span_delta >= 0
            # children partition (at most) the parent's tracked work
            kids = trc.children_of(s.sid)
            assert sum(k.work_delta for k in kids) <= s.work_delta

    def test_metrics_are_live(self, traced):
        _, _, mtr = traced
        table = mtr.as_dict()
        assert table["separator.rounds"] > 0
        assert table["flat.rebuilds"] > 0
        assert table["absorb.iterations"] > 0
        assert table["hdt.promotions"] >= 0

    def test_phase_stats_still_exported(self, traced):
        res, _, _ = traced
        assert {"seconds_separator", "seconds_absorb", "seconds_components"} <= set(
            res.stats
        )

    def test_exports_are_schema_valid(self, traced, tmp_path):
        _, trc, mtr = traced
        out = write_exports(str(tmp_path), trc, mtr)
        assert out["problems"] == []
        assert len(out["events"]) == len(trc.spans)
        for fname in ("trace.json", "trace.jsonl", "trace.txt"):
            assert (tmp_path / fname).exists()
        assert "parallel_dfs" in out["report"]


class TestDeterministicTracedExport:
    def test_fixed_clock_runs_are_byte_identical(self, tmp_path):
        files = []
        for tag in ("a", "b"):
            _, trc, mtr = trace_dfs(
                _graph(), seed=DFS_SEED, kernel_backend="numpy",
                clock=FakeClock(),
            )
            out = write_exports(str(tmp_path / tag), trc, mtr)
            assert out["problems"] == []
            files.append(tmp_path / tag)
        for fname in ("trace.json", "trace.jsonl", "trace.txt"):
            assert (files[0] / fname).read_bytes() == (files[1] / fname).read_bytes()


class TestTraceCli:
    def test_cli_writes_valid_trace(self, tmp_path, capsys):
        out = str(tmp_path / "out")
        rc = trace_main(
            ["--family", "gnm", "--n", "120", "--seed", "5",
             "--kernel-backend", "numpy", "--out", out]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "parallel_dfs" in captured.out
        doc = json.loads((tmp_path / "out" / "trace.json").read_text())
        assert doc["traceEvents"]
        assert validate_trace_events(doc["traceEvents"]) == []
        assert doc["otherData"]["backend"] == "numpy"
        assert doc["otherData"]["metrics"]["separator.rounds"] > 0
