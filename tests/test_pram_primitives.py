"""Unit + property tests for the parallel array primitives."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram import primitives as P
from repro.pram.tracker import Tracker


def fresh():
    return Tracker()


class TestReduce:
    def test_reduce_sum_basic(self):
        assert P.reduce_sum(fresh(), [1, 2, 3, 4, 5]) == 15

    def test_reduce_sum_empty(self):
        assert P.reduce_sum(fresh(), []) == 0

    def test_reduce_sum_single(self):
        assert P.reduce_sum(fresh(), [42]) == 42

    def test_reduce_max_min(self):
        xs = [5, -2, 9, 3]
        assert P.reduce_max(fresh(), xs) == 9
        assert P.reduce_min(fresh(), xs) == -2

    def test_reduce_empty_max_raises(self):
        with pytest.raises(ValueError):
            P.reduce_max(fresh(), [])

    def test_reduce_span_is_logarithmic(self):
        t = fresh()
        P.reduce_sum(t, list(range(1024)))
        # 10 combine levels, each O(1) span plus fork overhead O(log n)
        assert t.span <= 12 * (2 + 11)
        assert t.work >= 1023  # at least one op per combine

    @given(st.lists(st.integers(-1000, 1000), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_reduce_sum_matches_builtin(self, xs):
        assert P.reduce_sum(fresh(), xs) == sum(xs)


class TestScan:
    def test_exclusive_scan_basic(self):
        assert P.exclusive_scan(fresh(), [3, 1, 7, 0, 4]) == [0, 3, 4, 11, 11]

    def test_exclusive_scan_empty(self):
        assert P.exclusive_scan(fresh(), []) == []

    def test_exclusive_scan_single(self):
        assert P.exclusive_scan(fresh(), [9]) == [0]

    def test_inclusive_scan(self):
        assert P.inclusive_scan(fresh(), [3, 1, 7]) == [3, 4, 11]

    def test_scan_non_power_of_two(self):
        xs = list(range(13))
        expect = [sum(xs[:i]) for i in range(13)]
        assert P.exclusive_scan(fresh(), xs) == expect

    @given(st.lists(st.integers(-50, 50), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_scan_matches_reference(self, xs):
        expect = []
        acc = 0
        for x in xs:
            expect.append(acc)
            acc += x
        assert P.exclusive_scan(fresh(), xs) == expect

    def test_scan_work_linear(self):
        t = fresh()
        n = 4096
        P.exclusive_scan(t, [1] * n)
        assert t.work <= 20 * n  # O(n) with a small constant
        assert t.span <= 10 * (n.bit_length() + 2) ** 2


class TestPack:
    def test_pack_basic(self):
        xs = ["a", "b", "c", "d"]
        flags = [True, False, True, False]
        assert P.pack(fresh(), xs, flags) == ["a", "c"]

    def test_pack_all_false(self):
        assert P.pack(fresh(), [1, 2], [False, False]) == []

    def test_pack_all_true(self):
        assert P.pack(fresh(), [1, 2], [True, True]) == [1, 2]

    def test_pack_empty(self):
        assert P.pack(fresh(), [], []) == []

    def test_pack_length_mismatch(self):
        with pytest.raises(ValueError):
            P.pack(fresh(), [1], [True, False])

    def test_pack_index(self):
        assert P.pack_index(fresh(), [False, True, True, False, True]) == [1, 2, 4]

    @given(st.lists(st.tuples(st.integers(), st.booleans()), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_pack_matches_comprehension(self, pairs):
        xs = [p[0] for p in pairs]
        flags = [p[1] for p in pairs]
        assert P.pack(fresh(), xs, flags) == [x for x, f in pairs if f]


class TestMaps:
    def test_map_inplace(self):
        t = fresh()
        xs = [1, 2, 3]
        P.map_inplace(t, xs, lambda x: x * 2)
        assert xs == [2, 4, 6]

    def test_parallel_map(self):
        assert P.parallel_map(fresh(), [1, 2], lambda x: x + 1) == [2, 3]

    def test_argmin_by(self):
        xs = [(0, 5), (1, 2), (2, 2), (3, 9)]
        assert P.argmin_by(fresh(), xs, key=lambda p: p[1]) == 1  # tie -> lowest index

    def test_argmin_empty_raises(self):
        with pytest.raises(ValueError):
            P.argmin_by(fresh(), [], key=lambda x: x)
