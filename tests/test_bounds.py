"""Bound-regression gates: pinned tracked work/depth for the hot phases.

The tracked backend is a deterministic measurement instrument, so the
work/span of a fixed workload is an exact, reproducible number. These
tests pin those numbers for the two subsystems the kernel backend
touches — absorption (Theorem 3.2, the E8 workload) and HDT batch
deletion (Lemma 6.1, the E6 workload) — at two sizes each, and fail on
more than 2% drift in either direction.

Intent: a refactor that silently changes the *measured cost model* (not
just wall clock) must be a conscious decision. If you changed charging
on purpose, re-measure (each workload below is exactly reproducible with
a few lines of the driver code) and update the pins in the same commit.
"""

import random

import pytest

from repro.core.absorption import absorb_separator
from repro.core.separator import build_separator
from repro.graph.generators import gnm_random_connected_graph
from repro.pram import Tracker
from repro.structures.hdt import HDTConnectivity

# (n, work, span, iterations) for the E8 absorption workload:
# gnm(n, 3n, seed=0), separator + absorption with rng seed 0, tracker
# reset after separator construction.
E8_PINS = [
    (256, 166_133, 31_427, 65),
    (512, 393_666, 65_986, 102),
]

# (n, work, max_batch_span) for the E6 HDT workload: gnm(n, 4n, seed=0),
# delete all edges in batches of 16, deletion order shuffled with seed 1,
# tracker reset after construction.
E6_PINS = [
    (256, 117_635, 123),
    (512, 252_244, 145),
]

TOLERANCE = 0.02


def _within(got: int, pinned: int) -> bool:
    return abs(got - pinned) <= TOLERANCE * pinned


@pytest.mark.parametrize("n,work_pin,span_pin,iters_pin", E8_PINS)
def test_e8_absorption_work_span_pinned(n, work_pin, span_pin, iters_pin):
    g = gnm_random_connected_graph(n, 3 * n, seed=0)
    t = Tracker()
    rng = random.Random(0)
    sep = build_separator(g, t, rng)
    parent = {0: None}
    depth = {0: 0}
    t.reset()
    out = absorb_separator(g, sep.paths, 0, 0, parent, depth, t=t, rng=rng)
    assert out.iterations == iters_pin, (
        f"n={n}: iterations {out.iterations} != pinned {iters_pin}"
    )
    assert _within(t.work, work_pin), (
        f"n={n}: absorption work drifted >2%: {t.work} vs pinned {work_pin}"
    )
    assert _within(t.span, span_pin), (
        f"n={n}: absorption span drifted >2%: {t.span} vs pinned {span_pin}"
    )


@pytest.mark.parametrize("n,work_pin,span_pin", E6_PINS)
def test_e6_hdt_delete_all_work_pinned(n, work_pin, span_pin):
    g = gnm_random_connected_graph(n, 4 * n, seed=0)
    order = list(range(g.m))
    random.Random(1).shuffle(order)
    t = Tracker()
    hdt = HDTConnectivity(g, tracker=t)
    t.reset()
    max_span = 0
    for i in range(0, len(order), 16):
        s0 = t.span
        hdt.batch_delete(order[i : i + 16])
        max_span = max(max_span, t.span - s0)
    assert _within(t.work, work_pin), (
        f"n={n}: HDT deletion work drifted >2%: {t.work} vs pinned {work_pin}"
    )
    assert _within(max_span, span_pin), (
        f"n={n}: HDT max batch span drifted >2%: {max_span} vs pinned {span_pin}"
    )


def test_pins_are_backend_invariant_sanity():
    """The numpy backend may charge differently (it is an execution
    engine), but the *tracked* numbers above must not depend on which
    backends are registered — a fresh tracked run reproduces exactly."""
    n = 256
    g = gnm_random_connected_graph(n, 3 * n, seed=0)
    works = set()
    for _ in range(2):
        t = Tracker()
        rng = random.Random(0)
        sep = build_separator(g, t, rng)
        t.reset()
        absorb_separator(g, sep.paths, 0, 0, {0: None}, {0: 0}, t=t, rng=rng)
        works.add(t.work)
    assert len(works) == 1
