"""Tests for the correctness oracles in repro.core.verify."""

import random

from repro.graph import Graph
from repro.graph import generators as G
from repro.core.verify import (
    check_path_collection,
    explain_dfs_tree,
    is_initial_segment,
    is_separator,
    is_valid_dfs_tree,
    tree_depths,
)
from repro.baselines.sequential import sequential_dfs, sequential_dfs_randomized


class TestDFSTreeOracle:
    def test_sequential_dfs_always_valid(self):
        rng = random.Random(1)
        for _ in range(20):
            n = rng.randrange(2, 60)
            m = rng.randrange(n - 1, min(3 * n, n * (n - 1) // 2) + 1)
            g = G.gnm_random_connected_graph(n, m, seed=rng.randrange(1 << 30))
            root = rng.randrange(n)
            parent = sequential_dfs(g, root)
            assert is_valid_dfs_tree(g, root, parent)

    def test_randomized_sequential_dfs_valid(self):
        rng = random.Random(2)
        g = G.gnm_random_connected_graph(40, 100, seed=3)
        for i in range(10):
            parent = sequential_dfs_randomized(g, 0, random.Random(i))
            assert is_valid_dfs_tree(g, 0, parent)

    def test_bfs_tree_on_cycle_rejected(self):
        # a BFS tree of an even cycle has a cross edge at the antipode
        g = G.cycle_graph(6)
        parent = {0: None, 1: 0, 5: 0, 2: 1, 4: 5, 3: 2}
        reason = explain_dfs_tree(g, 0, parent)
        assert reason is not None and "cross edge" in reason

    def test_path_tree_valid(self):
        g = G.path_graph(4)
        parent = {0: None, 1: 0, 2: 1, 3: 2}
        assert is_valid_dfs_tree(g, 0, parent)

    def test_star_any_order_valid(self):
        g = G.star_graph(5)
        parent = {0: None, 1: 0, 2: 0, 3: 0, 4: 0}
        assert is_valid_dfs_tree(g, 0, parent)

    def test_missing_root(self):
        g = G.path_graph(3)
        assert explain_dfs_tree(g, 0, {1: None, 2: 1}) is not None

    def test_root_with_parent(self):
        g = G.path_graph(3)
        assert "has a parent" in explain_dfs_tree(
            g, 0, {0: 1, 1: None, 2: 1}
        )

    def test_non_spanning(self):
        g = G.path_graph(4)
        reason = explain_dfs_tree(g, 0, {0: None, 1: 0})
        assert "wrong vertex set" in reason

    def test_non_graph_edge(self):
        g = G.path_graph(4)
        parent = {0: None, 1: 0, 2: 1, 3: 1}  # (1,3) is not an edge
        assert "not a graph edge" in explain_dfs_tree(g, 0, parent)

    def test_cycle_in_parent_map(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (1, 3)])
        parent = {0: None, 1: 0, 2: 3, 3: 2}
        reason = explain_dfs_tree(g, 0, parent)
        assert reason is not None

    def test_disconnected_component_only(self):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        parent = {0: None, 1: 0, 2: 1}
        assert is_valid_dfs_tree(g, 0, parent)

    def test_tree_depths(self):
        parent = {0: None, 1: 0, 2: 1, 3: 1}
        d = tree_depths(parent, 0)
        assert d == {0: 0, 1: 1, 2: 2, 3: 2}


class TestDFSTreeOracleFailureModes:
    """Every distinct failure message of explain_dfs_tree, each triggered
    by the smallest graph that can reach it."""

    def test_orphan_non_root(self):
        g = G.path_graph(3)
        reason = explain_dfs_tree(g, 0, {0: None, 1: None, 2: 1})
        assert "has no parent but is not the root" in reason

    def test_parent_outside_tree_multicomponent(self):
        # parent points into another component: the vertex-set check cannot
        # catch it (the map covers exactly root's component)
        g = Graph(4, [(0, 1), (2, 3)])
        reason = explain_dfs_tree(g, 0, {0: None, 1: 2})
        assert "not in the tree" in reason

    def test_extra_vertex_from_other_component(self):
        g = Graph(4, [(0, 1), (2, 3)])
        reason = explain_dfs_tree(g, 0, {0: None, 1: 0, 2: None})
        assert "wrong vertex set" in reason and "extra=[2]" in reason

    def test_missing_vertex_reported(self):
        g = G.path_graph(3)
        reason = explain_dfs_tree(g, 0, {0: None, 1: 0})
        assert "missing=[2]" in reason

    def test_unreachable_cycle_reported(self):
        # 2 and 3 parent each other: no double-reach from the root side,
        # so this surfaces as unreachable vertices
        g = G.cycle_graph(4)
        reason = explain_dfs_tree(g, 0, {0: None, 1: 0, 2: 3, 3: 2})
        assert "not reachable" in reason

    def test_cross_edge_names_endpoints(self):
        g = G.cycle_graph(6)
        parent = {0: None, 1: 0, 5: 0, 2: 1, 4: 5, 3: 2}
        reason = explain_dfs_tree(g, 0, parent)
        assert "cross edge" in reason and "incomparable" in reason

    def test_self_parent_rejected(self):
        g = G.path_graph(3)
        reason = explain_dfs_tree(g, 0, {0: None, 1: 1, 2: 1})
        assert "not a graph edge" in reason

    def test_multicomponent_valid_tree_ignores_other_components(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        assert explain_dfs_tree(g, 3, {3: None, 4: 3, 5: 4}) is None

    def test_root_only_tree_single_vertex_component(self):
        g = Graph(3, [(1, 2)])
        assert explain_dfs_tree(g, 0, {0: None}) is None


class TestInitialSegment:
    def test_root_alone(self):
        g = G.gnm_random_connected_graph(10, 20, seed=1)
        assert is_initial_segment(g, 0, {0: None})

    def test_single_chain_valid(self):
        g = G.grid_graph(3, 3)
        # a chain 0-1-2 down the first row: components outside attach along it
        assert is_initial_segment(g, 0, {0: None, 1: 0, 2: 1})

    def test_two_branch_violation(self):
        # grid: branches 0->1 and 0->3 are incomparable, and the outside
        # component (4,5,7,...) touches both 1 and 3 -> not extendable
        g = G.grid_graph(3, 3)
        parent = {0: None, 1: 0, 3: 0}
        assert not is_initial_segment(g, 0, parent)

    def test_direct_edge_between_incomparable(self):
        # triangle: 1 and 2 both children of 0, but edge (1,2) exists
        g = G.complete_graph(3)
        parent = {0: None, 1: 0, 2: 0}
        assert not is_initial_segment(g, 0, parent)

    def test_full_dfs_tree_is_initial_segment(self):
        g = G.gnm_random_connected_graph(30, 70, seed=5)
        parent = sequential_dfs(g, 0)
        assert is_initial_segment(g, 0, parent)

    def test_prefix_of_dfs_is_initial_segment(self):
        # any "currently on the stack"-closed prefix of a DFS is extendable;
        # the root-to-current-vertex chain always is
        g = G.gnm_random_connected_graph(25, 60, seed=6)
        parent = sequential_dfs(g, 0)
        # take the chain from root to the deepest vertex
        depths = tree_depths(parent, 0)
        deepest = max(depths, key=depths.get)
        chain = {}
        x = deepest
        while x is not None:
            chain[x] = parent[x]
            x = parent[x]
        assert is_initial_segment(g, 0, chain)


class TestInitialSegmentFailureModes:
    def test_missing_root(self):
        g = G.path_graph(3)
        assert not is_initial_segment(g, 0, {1: None, 2: 1})

    def test_root_with_parent(self):
        g = G.path_graph(3)
        assert not is_initial_segment(g, 0, {0: 1, 1: None})

    def test_tree_link_not_an_edge(self):
        g = G.path_graph(4)
        assert not is_initial_segment(g, 0, {0: None, 1: 0, 3: 1})

    def test_parent_cycle_rejected(self):
        g = G.cycle_graph(4)
        assert not is_initial_segment(g, 0, {0: None, 1: 0, 2: 3, 3: 2})

    def test_root_only_segment_always_extendable(self):
        # a bare root is an initial segment of any graph it lives in
        for g in (G.path_graph(5), G.complete_graph(4), Graph(1, [])):
            assert is_initial_segment(g, 0, {0: None})

    def test_root_only_on_multicomponent_graph(self):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        assert is_initial_segment(g, 0, {0: None})
        assert is_initial_segment(g, 3, {3: None})

    def test_other_components_never_blocking(self):
        # a whole second component is outside T' but touches no tree vertex
        g = Graph(6, [(0, 1), (0, 2), (3, 4), (4, 5), (3, 5)])
        assert is_initial_segment(g, 0, {0: None, 1: 0})


class TestSeparatorOracle:
    def test_middle_of_path(self):
        g = G.path_graph(9)
        assert is_separator(g, {4})
        assert not is_separator(g, {1})

    def test_empty_separator_small_graph(self):
        g = Graph(2, [(0, 1)])
        assert not is_separator(g, set())
        assert is_separator(g, {0})

    def test_whole_vertex_set(self):
        g = G.complete_graph(5)
        assert is_separator(g, set(range(5)))

    def test_grid_column(self):
        g = G.grid_graph(5, 5)
        col = {2 + 5 * r for r in range(5)}
        assert is_separator(g, col)

    def test_empty_graph(self):
        assert is_separator(Graph(0), set())

    def test_multicomponent_balanced_needs_no_separator(self):
        # two components of size n/2 each: empty set already separates
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        assert is_separator(g, set())

    def test_multicomponent_large_component_dominates(self):
        # the big component (5 of 7 vertices) exceeds n/2 on its own
        g = Graph(7, [(0, 1), (1, 2), (2, 3), (3, 4), (5, 6)])
        assert not is_separator(g, set())
        assert is_separator(g, {2})
        # trimming one endpoint still leaves a size-4 component > 7/2
        assert not is_separator(g, {0})

    def test_isolated_vertices_count_toward_n(self):
        # path of 3 + three isolated vertices: n=6, largest comp 3 <= 3
        g = Graph(6, [(0, 1), (1, 2)])
        assert is_separator(g, set())


class TestPathCollectionOracle:
    def test_valid_paths(self):
        g = G.grid_graph(3, 3)
        assert check_path_collection(g, [[0, 1, 2], [3, 4, 5]]) is None

    def test_empty_path(self):
        g = G.path_graph(3)
        assert "empty" in check_path_collection(g, [[]])

    def test_repeat_within(self):
        g = G.cycle_graph(4)
        assert "repeats" in check_path_collection(g, [[0, 1, 0]])

    def test_overlap_between(self):
        g = G.path_graph(4)
        assert "more than one" in check_path_collection(g, [[0, 1], [1, 2]])

    def test_non_edge(self):
        g = G.path_graph(4)
        assert "non-edge" in check_path_collection(g, [[0, 2]])

    def test_out_of_range(self):
        g = G.path_graph(3)
        assert "out of range" in check_path_collection(g, [[5]])
