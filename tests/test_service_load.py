"""Concurrency/load battery for the DFS service.

Pushes hundreds of concurrent requests through the in-process
:class:`~repro.service.server.ServiceHandle` (real batch loop + thread
executor) and checks the service-grade properties: zero dropped or
misordered responses (every request id comes back on its own future),
bounded queue depth and batch size, coalescing of identical in-flight
queries, and a populated obs latency reservoir.

``test_load_heavy_sustained`` is the big sustained-traffic variant; CI's
smoke tier deselects it by name (``-k "not heavy"``).
"""

import asyncio
import random

from repro.graph.generators import make_family
from repro.obs import Metrics, Tracer, activate
from repro.pram.tracker import Tracker
from repro.service import DFSService, ServiceConfig, ServiceHandle


def _load_edges(n_each=12, parts=3):
    edges = []
    total = 0
    for k in range(parts):
        g = make_family("gnm", n_each, seed=k)
        edges.extend([u + total, v + total] for u, v in g.edges)
        total += g.n
    return total, edges


def _mixed_requests(n, count, seed, update_every=25):
    """A seeded stream: mostly dfs queries over a small key set (so the
    cache and the coalescer both get traffic), updates sprinkled in."""
    rng = random.Random(seed)
    reqs = []
    for i in range(count):
        if update_every and i % update_every == update_every - 1:
            u = rng.randrange(n)
            v = rng.randrange(n)
            if u == v:
                v = (v + 1) % n
            key = [min(u, v), max(u, v)]
            field = rng.choice(["insert", "delete"])
            reqs.append({"op": "update", "graph": "g", field: [key],
                         "id": f"u{i}"})
        else:
            reqs.append({
                "op": "dfs", "graph": "g",
                "root": rng.randrange(n), "seed": rng.randrange(3),
                "id": f"q{i}",
            })
    return reqs


async def _drive(service_cfg, n, edges, requests):
    async with ServiceHandle(service_cfg) as h:
        resp = await h.op("load", graph="g", n=n, edges=edges)
        assert resp["ok"], resp
        responses = await asyncio.gather(
            *(h.request(dict(r)) for r in requests)
        )
        stats = await h.op("stats")
        return responses, stats, dict(h.service.counters)


def _check_responses(requests, responses, counters, max_batch):
    assert len(responses) == len(requests), "dropped responses"
    for req, resp in zip(requests, responses):
        # gather preserves position: response i answers request i, and
        # the echoed id proves the service didn't cross futures
        assert resp.get("id") == req["id"], (req, resp)
        if req["op"] == "dfs":
            # updates may race deletes of not-yet-present edges (noop is
            # fine); dfs must always succeed on a valid root
            assert resp["ok"], resp
            assert "tree" in resp and resp["tree"]["root"] == req["root"]
    assert counters["responses"] >= len(requests)
    assert counters["errors"] == 0
    assert counters["max_batch"] <= max_batch
    # batching actually happened: far fewer rounds than requests
    assert counters["batches"] < len(requests)
    # queue depth stayed bounded by the offered load
    assert 0 < counters["max_queue_depth"] <= len(requests)


def test_load_smoke_500_concurrent():
    n, edges = _load_edges()
    requests = _mixed_requests(n, 500, seed=1)
    cfg = ServiceConfig(kernel_backend="numpy", max_batch=64)
    with activate(Tracer(tracker=Tracker()), Metrics()) as obs:
        responses, stats, counters = asyncio.run(
            _drive(cfg, n, edges, requests)
        )
        reservoir = obs.metrics.reservoir("service.latency_ms")
    _check_responses(requests, responses, counters, cfg.max_batch)
    # the obs latency reservoir saw every response of the run
    assert reservoir.count >= len(requests)
    summary = reservoir.summary()
    assert summary["p50"] <= summary["p99"] <= summary["max"]
    assert summary["min"] >= 0.0 and summary["sampled"] > 0
    # identical concurrent queries coalesced into shared computes
    assert counters["coalesced"] > 0
    # stats op exposes the same picture over the protocol
    assert stats["service"]["dfs_queries"] == counters["dfs_queries"]
    assert 0.0 <= stats["graphs"]["g"]["cache_hit_rate"] <= 1.0


def test_load_updates_interleaved_stay_consistent():
    # tighter max_batch: updates act as barriers inside nearly every
    # round, exercising the segment split of _process_batch
    n, edges = _load_edges(n_each=10, parts=2)
    requests = _mixed_requests(n, 300, seed=7, update_every=5)
    cfg = ServiceConfig(kernel_backend="numpy", max_batch=8)
    responses, stats, counters = asyncio.run(_drive(cfg, n, edges, requests))
    _check_responses(requests, responses, counters, cfg.max_batch)
    assert counters["updates"] > 0
    final = stats["graphs"]["g"]
    assert final["mutations"] >= 1
    maint = final["maintenance"]
    assert maint["incremental_batches"] + maint["rebuild_batches"] >= 1


def test_load_heavy_sustained():
    # the sustained-traffic variant: several waves so cached keys are
    # re-queried across update epochs; excluded from the CI smoke tier
    n, edges = _load_edges(n_each=16, parts=3)
    cfg = ServiceConfig(kernel_backend="numpy", max_batch=64)

    async def waves():
        async with ServiceHandle(cfg) as h:
            await h.op("load", graph="g", n=n, edges=edges)
            all_pairs = []
            for wave in range(4):
                requests = _mixed_requests(n, 500, seed=wave, update_every=40)
                responses = await asyncio.gather(
                    *(h.request(dict(r)) for r in requests)
                )
                all_pairs.extend(zip(requests, responses))
            return all_pairs, dict(h.service.counters), (
                await h.op("stats")
            )

    pairs, counters, stats = asyncio.run(waves())
    requests = [r for r, _ in pairs]
    responses = [r for _, r in pairs]
    _check_responses(requests, responses, counters, cfg.max_batch)
    assert counters["dfs_queries"] >= 1900
    # sustained traffic over a small key set must hit the cache hard
    assert stats["graphs"]["g"]["cache_hits"] > 0
