"""Tests for the sequential traversal helpers (test-support oracles)."""

import pytest

from repro.graph import Graph
from repro.graph import generators as G
from repro.graph.traversal import bfs_distances, bfs_tree, reachable_from, tree_path


class TestBFS:
    def test_bfs_tree_parents(self):
        g = G.path_graph(4)
        parent = bfs_tree(g, 0)
        assert parent == [None, 0, 1, 2]

    def test_bfs_tree_unreachable_none(self):
        g = Graph(4, [(0, 1)])
        parent = bfs_tree(g, 0)
        assert parent[2] is None and parent[3] is None

    def test_bfs_distances(self):
        g = G.cycle_graph(6)
        d = bfs_distances(g, 0)
        assert d == [0, 1, 2, 3, 2, 1]

    def test_bfs_distances_unreachable(self):
        g = Graph(3, [(0, 1)])
        assert bfs_distances(g, 0)[2] == -1

    def test_reachable_from(self):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        assert reachable_from(g, 0) == {0, 1, 2}
        assert reachable_from(g, 4) == {3, 4}


class TestTreePath:
    def test_straight_chain(self):
        parent = [None, 0, 1, 2]
        assert tree_path(parent, 0, 3) == [0, 1, 2, 3]
        assert tree_path(parent, 3, 0) == [3, 2, 1, 0]

    def test_through_lca(self):
        #     0
        #    / \
        #   1   2
        #  /     \
        # 3       4
        parent = [None, 0, 0, 1, 2]
        assert tree_path(parent, 3, 4) == [3, 1, 0, 2, 4]

    def test_same_vertex(self):
        parent = [None, 0]
        assert tree_path(parent, 1, 1) == [1]

    def test_disjoint_trees_raise(self):
        parent = [None, None]
        with pytest.raises(ValueError):
            tree_path(parent, 0, 1)
