"""Stateful model-based battery for the DFS service (hypothesis).

An :class:`AsyncServiceMachine` drives a live in-process
:class:`~repro.service.server.ServiceHandle` (real asyncio batch loop +
executor) through arbitrary interleavings of queries, edge updates, and
cache invalidations, while a plain edge-*set* model tracks the canonical
graph state.  After every step the service must stay in lockstep:

* every served DFS tree is **byte-identical** to a fresh
  ``parallel_dfs`` on ``Graph(n, sorted(model_edges))`` — whether it
  came from the component-stamp cache or a recompute;
* the per-graph mutation counter is monotone and advances exactly on
  applied (non-noop) batches;
* a response claiming ``cached: true`` implies the previous identical
  query was served under the same mutation counter.

Shrinking works because rules draw only small integers; hypothesis can
minimize a failing schedule to its essential update/query alternation.
"""

import asyncio
import random

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.dfs import parallel_dfs
from repro.graph.generators import make_family
from repro.graph.graph import Graph
from repro.service import ServiceConfig, ServiceHandle, tree_bytes, tree_payload

#: two small components so untouched-component cache hits actually occur
_PARTS = ("gnm", "tree")
_N_EACH = 8


def _initial_edges():
    edges = []
    total = 0
    for k, fam in enumerate(_PARTS):
        g = make_family(fam, _N_EACH, seed=k)
        edges.extend((u + total, v + total) for u, v in g.edges)
        total += g.n
    return total, edges


class AsyncServiceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.loop = asyncio.new_event_loop()
        self.n, edges = _initial_edges()
        self.model = {(min(u, v), max(u, v)) for u, v in edges}
        self.handle = ServiceHandle(
            ServiceConfig(kernel_backend="numpy", rebuild_fraction=0.5)
        )
        self._do(self.handle.__aenter__())
        resp = self._do(
            self.handle.op(
                "load", graph="g", n=self.n,
                edges=[list(e) for e in sorted(self.model)],
            )
        )
        assert resp["ok"], resp
        self.mutations = resp["mutations"]
        #: (root, seed) -> mutation counter the last response was served at
        self.last_served: dict[tuple[int, int], int] = {}

    def _do(self, coro):
        return self.loop.run_until_complete(coro)

    def _oracle_bytes(self, root, seed):
        g = Graph(self.n, sorted(self.model))
        res = parallel_dfs(
            g, root, rng=random.Random(seed),
            backend="flat", kernel_backend="numpy",
        )
        return tree_bytes(tree_payload(res.root, res.parent, res.depth))

    # ------------------------------------------------------------------
    @rule(root=st.integers(0, 2 * _N_EACH - 1), seed=st.integers(0, 2))
    def query(self, root, seed):
        resp = self._do(self.handle.op("dfs", graph="g", root=root, seed=seed))
        assert resp["ok"], resp
        assert resp["mutations"] == self.mutations
        assert tree_bytes(resp["tree"]) == self._oracle_bytes(root, seed), (
            f"lockstep violation at root={root} seed={seed} "
            f"mutations={self.mutations} cached={resp['cached']}"
        )
        if resp["cached"]:
            # a hit implies this (root, seed) was served before and the
            # root's component is unchanged since; the stamp machinery
            # guarantees at least that a previous serve existed
            assert (root, seed) in self.last_served
        self.last_served[(root, seed)] = self.mutations

    @rule(data=st.data())
    def update(self, data):
        u = data.draw(st.integers(0, self.n - 1), label="u")
        v = data.draw(st.integers(0, self.n - 1), label="v")
        if u == v:
            return
        key = (min(u, v), max(u, v))
        if key in self.model:
            resp = self._do(
                self.handle.op("update", graph="g", delete=[list(key)])
            )
            self.model.discard(key)
        else:
            resp = self._do(
                self.handle.op("update", graph="g", insert=[list(key)])
            )
            self.model.add(key)
        assert resp["ok"], resp
        assert resp["mode"] in ("incremental", "rebuild")
        assert resp["mutations"] == self.mutations + 1, "counter must advance"
        self.mutations = resp["mutations"]

    @rule()
    def noop_update(self):
        # inserting a present edge (or an empty batch) must not advance
        # the counter or disturb any cached answer
        batch = [list(next(iter(self.model)))] if self.model else []
        resp = self._do(self.handle.op("update", graph="g", insert=batch))
        assert resp["ok"] and resp["mode"] == "noop"
        assert resp["mutations"] == self.mutations

    @rule()
    def invalidate_cache(self):
        # dropping every cached tree must be invisible in responses
        # (only the cached flag may change)
        self._do(self.handle.op("ping"))  # barrier: batcher idle
        self.handle.service.store.get("g").invalidate()

    # ------------------------------------------------------------------
    @invariant()
    def counters_consistent(self):
        c = self.handle.service.counters
        assert c["responses"] <= c["requests"]
        assert c["lockstep_violations"] == 0
        rg = self.handle.service.store.get("g")
        assert rg.dyn.mutations == self.mutations
        assert sorted(rg.dyn.edge_pairs()) == sorted(self.model)

    def teardown(self):
        try:
            rg = self.handle.service.store.get("g")
            rg.dyn.check_invariants()
            self._do(self.handle.__aexit__(None, None, None))
        finally:
            self.loop.close()


TestServiceStateful = AsyncServiceMachine.TestCase
TestServiceStateful.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
