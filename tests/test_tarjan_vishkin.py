"""Tests for Tarjan–Vishkin parallel biconnectivity."""

import random

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.biconnectivity import biconnectivity
from repro.apps.tarjan_vishkin import tarjan_vishkin_biconnectivity
from repro.graph import Graph
from repro.graph import generators as G
from repro.pram import Tracker


def nx_components(g: Graph):
    h = nx.Graph()
    h.add_nodes_from(range(g.n))
    h.add_edges_from(g.edges)
    return {
        frozenset(tuple(sorted(e)) for e in c)
        for c in nx.biconnected_component_edges(h)
    }


def check(g: Graph):
    ours = set(tarjan_vishkin_biconnectivity(g))
    assert ours == nx_components(g)


class TestAgainstNetworkx:
    def test_cycle(self):
        check(G.cycle_graph(8))

    def test_path_every_edge_own_component(self):
        g = G.path_graph(6)
        comps = tarjan_vishkin_biconnectivity(g)
        assert len(comps) == 5
        assert all(len(c) == 1 for c in comps)

    def test_star(self):
        check(G.star_graph(9))

    def test_barbell(self):
        check(G.barbell_graph(5, 3))

    def test_lollipop(self):
        check(G.lollipop_graph(6, 7))

    def test_grid(self):
        check(G.grid_graph(5, 6))

    def test_theta_graph(self):
        # two vertices joined by three internally disjoint paths: one block
        edges = (
            [(0, 1), (1, 2), (2, 9)]
            + [(0, 3), (3, 4), (4, 9)]
            + [(0, 5), (5, 6), (6, 9)]
        )
        check(Graph(10, edges))

    def test_disconnected(self):
        g = Graph(9, [(0, 1), (1, 2), (2, 0), (4, 5), (6, 7), (7, 8), (8, 6)])
        check(g)

    def test_empty_graph(self):
        assert tarjan_vishkin_biconnectivity(Graph(5, [])) == []

    def test_random_graphs(self):
        rng = random.Random(4)
        for trial in range(15):
            n = rng.randrange(3, 60)
            m = rng.randrange(n - 1, min(3 * n, n * (n - 1) // 2) + 1)
            check(G.gnm_random_connected_graph(n, m, seed=trial))

    def test_random_disconnected(self):
        rng = random.Random(6)
        for trial in range(8):
            n = rng.randrange(4, 40)
            m = rng.randrange(0, min(2 * n, n * (n - 1) // 2) + 1)
            check(G.gnm_random_graph(n, m, seed=trial + 100))

    @given(st.integers(3, 40), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property(self, n, seed):
        m = min(2 * n, n * (n - 1) // 2)
        check(G.gnm_random_graph(n, m, seed=seed))


class TestCrossValidationWithDFSRoute:
    def test_two_parallel_routes_agree(self):
        # DFS route (low-link over the Theorem 1.1 tree) vs the TV route
        # (no DFS at all) — two independent parallel algorithms, one answer
        for seed in range(5):
            g = G.gnm_random_connected_graph(50, 120, seed=seed)
            via_dfs = {frozenset(c) for c in biconnectivity(g, 0).components}
            via_tv = set(tarjan_vishkin_biconnectivity(g))
            assert via_dfs == via_tv


class TestCosts:
    def test_work_near_linear(self):
        g = G.gnm_random_connected_graph(512, 1536, seed=9)
        t = Tracker()
        tarjan_vishkin_biconnectivity(g, t)
        logn = g.n.bit_length()
        assert t.work <= 40 * (g.n + g.m) * logn

    def test_polylog_span(self):
        g = G.gnm_random_connected_graph(512, 1536, seed=10)
        t = Tracker()
        tarjan_vishkin_biconnectivity(g, t)
        logn = g.n.bit_length()
        # TV85 is O(log n) depth on a CRCW PRAM; our substrates add logs
        assert t.span <= 60 * logn**3
