"""Tests for the demo thread-pool executor and Tracker.primitive scopes."""

import threading

from repro.pram import Tracker, default_workers, run_parallel


class TestRunParallel:
    def test_preserves_order(self):
        assert run_parallel([3, 1, 2], lambda x: x * 10) == [30, 10, 20]

    def test_empty(self):
        assert run_parallel([], lambda x: x) == []

    def test_small_input_fallback(self):
        # under the pool threshold the plain loop is used; results identical
        assert run_parallel([1, 2], lambda x: -x, workers=8) == [-1, -2]

    def test_single_worker(self):
        assert run_parallel(list(range(10)), lambda x: x + 1, workers=1) == list(
            range(1, 11)
        )

    def test_actually_concurrent(self):
        # two tasks that each wait for the other to start can only finish
        # if they run concurrently
        barrier = threading.Barrier(2, timeout=5)

        def task(_):
            barrier.wait()
            return True

        assert run_parallel([0, 1, 2, 3], task, workers=2) == [True] * 4

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_exceptions_propagate(self):
        import pytest

        def boom(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            run_parallel(list(range(8)), boom, workers=2)


class TestPrimitiveScope:
    def test_span_charged_as_bound(self):
        t = Tracker()
        with t.primitive(5):
            t.op(100)  # 100 sequential ops inside
        assert t.work == 100
        assert t.span == 5

    def test_work_always_measured(self):
        t = Tracker()
        with t.primitive(2):
            t.op(7)
            t.op(3)
        assert t.work == 10

    def test_nested_primitives_outer_wins(self):
        t = Tracker()
        with t.primitive(4):
            with t.primitive(100):
                t.op(50)
        assert t.span == 4
        assert t.work == 50

    def test_sequential_composition_of_primitives(self):
        t = Tracker()
        for _ in range(3):
            with t.primitive(7):
                t.op(9)
        assert t.span == 21
        assert t.work == 27

    def test_primitive_inside_parallel_branch(self):
        t = Tracker(fork_overhead=False)

        def branch(w):
            with t.primitive(w):
                t.op(1000)

        t.parallel_for([2, 6], branch)
        assert t.span == 6  # max of the branch bounds
        assert t.work == 2000

    def test_primitive_restores_on_exception(self):
        t = Tracker()
        try:
            with t.primitive(3):
                t.op(5)
                raise ValueError("x")
        except ValueError:
            pass
        assert t.span == 3
        assert t.work == 5
