"""Integration tests for the service's live telemetry plane.

The acceptance surface of the observability tier: a slow request must
produce a flight-recorder dump whose span tree reconstructs the request
end-to-end (client request id -> batch -> compute -> DFS phase spans),
the ``stats`` op must carry the server provenance block and the
OpenMetrics exposition, anomalies (protocol errors, lockstep
violations) must land in the recorder, and — the zero-overhead
contract — served trees must stay byte-identical with the recorder on.
"""

import asyncio
import json
import random

import pytest

from repro.core.dfs import parallel_dfs
from repro.graph.graph import Graph
from repro.obs import Metrics, Tracer, activate, validate_trace_events
from repro.obs.flight import recorder, NULL_RECORDER
from repro.service import (
    DFSService,
    ServiceConfig,
    ServiceHandle,
    ServiceServer,
    tree_payload,
)
from repro.service.client import ServiceClient
from repro.service.server import git_sha


def run(coro):
    return asyncio.run(coro)


def ring_graph(n=24):
    return n, [[i, (i + 1) % n] for i in range(n)]


async def load_ring(h, name="g", n=24):
    n, edges = ring_graph(n)
    resp = await h.request(
        {"op": "load", "graph": name, "n": n, "edges": edges}
    )
    assert resp["ok"], resp
    return n


# ----------------------------------------------------------------------
# the headline: slow request -> dump -> end-to-end reconstruction
# ----------------------------------------------------------------------


class TestSlowRequestDump:
    def test_slow_request_dump_reconstructs_request(self, tmp_path):
        # an SLO no real compute can meet: every dfs response is an
        # anomaly, so the dump is produced deterministically
        config = ServiceConfig(
            slo_ms=0.000001, flight_dir=str(tmp_path)
        )

        async def main():
            async with ServiceHandle(config) as h:
                await load_ring(h)
                resp = await h.request(
                    {"op": "dfs", "graph": "g", "root": 0, "id": "cli-42"}
                )
                assert resp["ok"], resp
                rec = h.service.recorder
                assert rec.anomalies.get("slow_request", 0) >= 1
                return list(rec.dumps)

        dumps = run(main())
        assert dumps, "slow request produced no flight dump"
        # the load request trips the micro-SLO too; the dfs request's
        # anomaly is the most recent dump
        with open(dumps[-1], "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        events = doc["traceEvents"]
        # the bundle is schema-valid Perfetto
        assert validate_trace_events(events) == []
        # ... and the client's request id threads the whole story:
        mine = [
            e for e in events
            if e["args"].get("request_id") == "cli-42"
        ]
        names = [e["name"] for e in mine]
        # the batch span lists the request in its coalescing window
        batches = [
            e for e in events
            if e["name"] == "service.batch"
            and "cli-42" in e["args"].get("requests", [])
        ]
        assert batches, "no batch span names the request"
        # the executor-side compute span carries the id (bound_call
        # crossed the thread boundary) ...
        computes = [e for e in mine if e["name"] == "service.compute"]
        assert computes and computes[0]["args"]["graph"] == "g"
        # ... and so do the DFS phase spans underneath it
        assert any(n.startswith("phase:") for n in names) or any(
            n == "parallel_dfs" for n in names
        )
        # the anomaly instant event closes the loop
        assert any(n == "anomaly.slow_request" for n in names)
        # the request-completion event carries the measured latency
        reqs = [e for e in mine if e["name"] == "service.request"]
        assert reqs and reqs[0]["args"]["latency_ms"] > 0
        assert doc["otherData"]["reason"] == "slow_request"

    def test_no_dump_when_slo_met(self, tmp_path):
        config = ServiceConfig(slo_ms=60_000.0, flight_dir=str(tmp_path))

        async def main():
            async with ServiceHandle(config) as h:
                await load_ring(h)
                resp = await h.request(
                    {"op": "dfs", "graph": "g", "root": 0}
                )
                assert resp["ok"]
                return dict(h.service.recorder.anomalies)

        anomalies = run(main())
        assert "slow_request" not in anomalies
        assert list(tmp_path.iterdir()) == []


# ----------------------------------------------------------------------
# stats: provenance block + OpenMetrics exposition
# ----------------------------------------------------------------------


class TestStatsExposition:
    def test_server_block_has_provenance(self):
        async def main():
            async with ServiceHandle() as h:
                await load_ring(h)
                await h.request({"op": "dfs", "graph": "g", "root": 0})
                return await h.request({"op": "stats"})

        resp = run(main())
        srv = resp["server"]
        assert srv["git_sha"] == git_sha()
        assert srv["kernel_backend"] == "numpy"
        assert srv["structure"] == "flat"
        assert srv["uptime_s"] >= 0
        assert srv["shm_leaked"] == 0
        assert srv["flight"]["capacity"] == 4096
        assert srv["flight"]["spans"] > 0

    def test_openmetrics_format(self):
        async def main():
            async with ServiceHandle() as h:
                await load_ring(h)
                await h.request({"op": "dfs", "graph": "g", "root": 0})
                await h.request({"op": "dfs", "graph": "g", "root": 0})
                return await h.request(
                    {"op": "stats", "format": "openmetrics"}
                )

        resp = run(main())
        text = resp["openmetrics"]
        assert text.endswith("# EOF\n")
        assert "repro_service_requests_total" in text
        assert "repro_service_dfs_queries_total 2" in text
        assert "repro_service_cache_hits_total 1" in text
        assert 'repro_graph_n{graph="g"} 24' in text
        assert (
            f'git_sha="{git_sha()}"' in text
            and "repro_server_build_info" in text
        )
        assert "repro_server_shm_leaked_segments 0" in text
        assert 'repro_service_latency_ms{quantile="0.99"}' in text
        assert "repro_flight_spans" in text
        # no duplicate unlabelled sample lines anywhere
        samples = [
            line.split(" ")[0]
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert len(samples) == len(set(samples))

    def test_bad_format_is_a_protocol_error(self):
        async def main():
            async with ServiceHandle() as h:
                return await h.request({"op": "stats", "format": "xml"})

        resp = run(main())
        assert not resp["ok"]
        assert resp["error"]["code"] == "bad_field"

    def test_openmetrics_over_tcp_and_protocol_error_anomaly(self):
        async def main():
            service = DFSService()
            server = ServiceServer(service, "127.0.0.1", 0)
            await server.start()
            host, port = server.address
            loop = asyncio.get_running_loop()

            def poll():
                with ServiceClient(host, port, timeout=10) as c:
                    c._sock.sendall(b"this is not json\n")
                    bad = json.loads(c._rfile.readline())
                    om = c.request({"op": "stats", "format": "openmetrics"})
                    return bad, om

            bad, om = await loop.run_in_executor(None, poll)
            await server.stop()
            return bad, om, dict(service.recorder.anomalies)

        bad, om, anomalies = run(main())
        assert not bad["ok"] and bad["error"]["code"] == "bad_json"
        assert anomalies.get("protocol_error") == 1
        assert 'reason="protocol_error"' in om["openmetrics"]


# ----------------------------------------------------------------------
# anomalies: lockstep violation, recorder install scoping
# ----------------------------------------------------------------------


class TestAnomalies:
    def test_lockstep_violation_fires_anomaly(self, monkeypatch):
        from repro.service import store as store_mod

        config = ServiceConfig(verify_every=1)

        async def main():
            async with ServiceHandle(config) as h:
                await load_ring(h)
                rg = h.service.store.get("g")
                real = rg.compute(0, 0)
                corrupt = dict(real)
                corrupt["depth"] = dict(real["depth"])
                corrupt["depth"]["1"] = 99999
                monkeypatch.setattr(
                    type(rg), "lookup", lambda self, r, s: corrupt
                )
                resp = await h.request(
                    {"op": "dfs", "graph": "g", "root": 0, "id": "bad"}
                )
                return resp, dict(h.service.recorder.anomalies)

        resp, anomalies = run(main())
        assert not resp["ok"]
        assert resp["error"]["code"] == "lockstep_violation"
        assert anomalies.get("lockstep_violation") == 1

    def test_recorder_installed_for_lifetime_only(self):
        async def main():
            service = DFSService()
            assert recorder() is NULL_RECORDER
            await service.start()
            installed = recorder()
            await service.stop()
            return installed is service.recorder, recorder()

        was_installed, after = run(main())
        assert was_installed
        assert after is NULL_RECORDER

    def test_recorder_joins_outer_activate_scope(self):
        tr = Tracer()
        mtr = Metrics()
        with activate(tr, mtr):
            async def main():
                async with ServiceHandle() as h:
                    await load_ring(h)
                    await h.request({"op": "dfs", "graph": "g", "root": 0})
                    return h.service.recorder

            rec = run(main())
        assert rec.tracer is tr and rec.metrics is mtr
        assert any(s.name == "service.compute" for s in tr.spans)

    def test_flight_recorder_can_be_disabled(self):
        config = ServiceConfig(flight_recorder=False)

        async def main():
            async with ServiceHandle(config) as h:
                await load_ring(h)
                resp = await h.request(
                    {"op": "dfs", "graph": "g", "root": 0}
                )
                assert resp["ok"]
                stats = await h.request({"op": "stats"})
                return h.service.recorder, stats

        rec, stats = run(main())
        assert rec is None
        assert "flight" not in stats["server"]


# ----------------------------------------------------------------------
# the zero-overhead contract: byte-identity with the recorder on
# ----------------------------------------------------------------------


class TestByteIdentityWithRecorderOn:
    def test_served_tree_matches_untraced_oracle(self):
        n, edges = ring_graph(32)
        g = Graph(
            n, sorted({(min(u, v), max(u, v)) for u, v in edges})
        )
        oracle = parallel_dfs(
            g, 0, rng=random.Random(0), backend="flat",
            kernel_backend="numpy",
        )
        expected = tree_payload(oracle.root, oracle.parent, oracle.depth)

        async def main():
            async with ServiceHandle() as h:
                await h.request(
                    {"op": "load", "graph": "g", "n": n, "edges": edges}
                )
                return await h.request(
                    {"op": "dfs", "graph": "g", "root": 0, "id": "x"}
                )

        resp = run(main())
        assert resp["ok"]
        assert resp["tree"] == expected
