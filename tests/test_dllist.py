"""Tests for the doubly-linked path collection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.listrank import PathCollection


def make_path(pc: PathCollection, vs):
    for v in vs:
        pc.add_singleton(v)
    for a, b in zip(vs, vs[1:]):
        pc.link(a, b)
    return vs[0]


class TestBasics:
    def test_singleton(self):
        pc = PathCollection()
        pc.add_singleton(5)
        assert 5 in pc
        assert pc.is_singleton(5)
        assert pc.is_head(5) and pc.is_tail(5)
        assert pc.next(5) is None and pc.prev(5) is None

    def test_duplicate_add_rejected(self):
        pc = PathCollection()
        pc.add_singleton(1)
        with pytest.raises(ValueError):
            pc.add_singleton(1)

    def test_link_and_navigate(self):
        pc = PathCollection()
        make_path(pc, [1, 2, 3])
        assert pc.path_of(2) == [1, 2, 3]
        assert pc.head_of(3) == 1
        assert pc.tail_of(1) == 3
        assert pc.next(1) == 2 and pc.prev(3) == 2
        pc.check_invariants()

    def test_link_requires_tail_and_head(self):
        pc = PathCollection()
        make_path(pc, [1, 2])
        pc.add_singleton(3)
        with pytest.raises(ValueError):
            pc.link(1, 3)  # 1 is not a tail
        with pytest.raises(ValueError):
            pc.link(3, 2)  # 2 is not a head

    def test_len(self):
        pc = PathCollection()
        make_path(pc, [1, 2, 3])
        pc.add_singleton(9)
        assert len(pc) == 4


class TestCuts:
    def test_cut_after(self):
        pc = PathCollection()
        make_path(pc, [1, 2, 3, 4])
        w = pc.cut_after(2)
        assert w == 3
        assert pc.path_of(1) == [1, 2]
        assert pc.path_of(3) == [3, 4]
        pc.check_invariants()

    def test_cut_after_tail_is_noop(self):
        pc = PathCollection()
        make_path(pc, [1, 2])
        assert pc.cut_after(2) is None

    def test_cut_before(self):
        pc = PathCollection()
        make_path(pc, [1, 2, 3])
        u = pc.cut_before(3)
        assert u == 2
        assert pc.path_of(1) == [1, 2]
        assert pc.path_of(3) == [3]

    def test_pop_head(self):
        pc = PathCollection()
        make_path(pc, [1, 2, 3])
        new_head = pc.pop_head(1)
        assert new_head == 2
        assert 1 not in pc
        assert pc.path_of(2) == [2, 3]

    def test_pop_head_of_singleton(self):
        pc = PathCollection()
        pc.add_singleton(7)
        assert pc.pop_head(7) is None
        assert 7 not in pc

    def test_pop_head_requires_head(self):
        pc = PathCollection()
        make_path(pc, [1, 2])
        with pytest.raises(ValueError):
            pc.pop_head(2)

    def test_push_head(self):
        pc = PathCollection()
        make_path(pc, [2, 3])
        h = pc.push_head(2, 1)
        assert h == 1
        assert pc.path_of(3) == [1, 2, 3]

    def test_push_head_new_path(self):
        pc = PathCollection()
        assert pc.push_head(None, 4) == 4
        assert pc.is_singleton(4)

    def test_discard_path(self):
        pc = PathCollection()
        make_path(pc, [1, 2, 3])
        make_path(pc, [7, 8])
        gone = pc.discard_path(2)
        assert gone == [1, 2, 3]
        assert 2 not in pc and 7 in pc
        assert pc.path_of(7) == [7, 8]


class TestHeads:
    def test_heads_listing(self):
        pc = PathCollection()
        make_path(pc, [1, 2])
        make_path(pc, [5, 6, 7])
        pc.add_singleton(9)
        assert sorted(pc.heads()) == [1, 5, 9]


class TestPropertyRandomOps:
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=30, unique=True),
           st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_random_split_merge_preserves_structure(self, vs, seed):
        import random

        rng = random.Random(seed)
        pc = PathCollection()
        make_path(pc, vs)
        members = list(vs)
        for _ in range(20):
            v = rng.choice(members)
            op = rng.randrange(3)
            if op == 0:
                pc.cut_after(v)
            elif op == 1:
                pc.cut_before(v)
            else:
                # rejoin two random pieces if possible
                tails = [x for x in members if pc.is_tail(x)]
                heads = [x for x in members if pc.is_head(x)]
                rng.shuffle(tails)
                rng.shuffle(heads)
                for tl in tails:
                    for hd in heads:
                        if pc.head_of(tl) != hd:
                            pc.link(tl, hd)
                            break
                    else:
                        continue
                    break
            pc.check_invariants()
        # every vertex still present exactly once across paths
        seen = []
        for h in pc.heads():
            seen += pc.path_of(h)
        assert sorted(seen) == sorted(vs)


class TestIterationAndSingletons:
    def test_iter_from_midpoint(self):
        pc = PathCollection()
        make_path(pc, [4, 5, 6, 7])
        assert list(pc.iter_from(6)) == [6, 7]

    def test_remove_singleton(self):
        pc = PathCollection()
        pc.add_singleton(3)
        pc.remove_singleton(3)
        assert 3 not in pc

    def test_remove_singleton_rejects_linked(self):
        pc = PathCollection()
        make_path(pc, [1, 2])
        import pytest

        with pytest.raises(ValueError):
            pc.remove_singleton(1)
