"""Tests for separator absorption (Theorem 3.2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.absorption import absorb_separator
from repro.core.separator import build_separator
from repro.core.verify import is_initial_segment, is_separator
from repro.graph import generators as G
from repro.pram import Tracker


def run_absorption(g, root=0, root_depth=0, seed=0, backend="rc"):
    t = Tracker()
    rng = random.Random(seed)
    sep = build_separator(g, t, rng)
    parent = {root: None}
    depth = {root: root_depth}
    out = absorb_separator(
        g, sep.paths, root, root_depth, parent, depth,
        t=t, rng=rng, backend=backend,
    )
    return sep, out, parent, depth, t


BACKENDS = ["rc", "lct"]


@pytest.mark.parametrize("backend", BACKENDS)
class TestAbsorption:
    def test_segment_contains_separator(self, backend):
        g = G.gnm_random_connected_graph(80, 240, seed=1)
        sep, out, parent, depth, _ = run_absorption(g, backend=backend)
        assert sep.vertices <= out.absorbed_local

    def test_result_is_initial_segment(self, backend):
        for seed in range(4):
            g = G.gnm_random_connected_graph(60, 150, seed=seed)
            _, out, parent, depth, _ = run_absorption(g, seed=seed, backend=backend)
            assert is_initial_segment(g, 0, parent), f"seed={seed}"

    def test_result_is_separator(self, backend):
        g = G.gnm_random_connected_graph(100, 250, seed=3)
        _, out, parent, _, _ = run_absorption(g, backend=backend)
        assert is_separator(g, out.absorbed_local)

    def test_components_halved(self, backend):
        g = G.grid_graph(10, 10)
        _, out, parent, _, _ = run_absorption(g, backend=backend)
        remaining = set(range(g.n)) - out.absorbed_local
        # every remaining component has at most n/2 vertices
        seen = set()
        for s in remaining:
            if s in seen:
                continue
            comp = {s}
            stack = [s]
            while stack:
                u = stack.pop()
                for w in g.adj[u]:
                    if w in remaining and w not in comp:
                        comp.add(w)
                        stack.append(w)
            seen |= comp
            assert len(comp) <= g.n / 2

    def test_depths_consistent_with_parents(self, backend):
        g = G.gnm_random_connected_graph(70, 200, seed=4)
        _, out, parent, depth, _ = run_absorption(g, root_depth=5, backend=backend)
        for v, p in parent.items():
            if p is None:
                assert depth[v] == 5
            else:
                assert depth[v] == depth[p] + 1, (v, p)

    def test_parent_edges_exist(self, backend):
        g = G.gnm_random_connected_graph(70, 200, seed=5)
        _, out, parent, _, _ = run_absorption(g, backend=backend)
        for v, p in parent.items():
            if p is not None:
                assert g.has_edge(v, p)

    def test_root_on_separator_path(self, backend):
        # force the root to sit on a separator path: path graph's separator
        # must contain middle vertices; root at the exact middle
        g = G.path_graph(33)
        sep, out, parent, _, _ = run_absorption(g, root=16, backend=backend)
        assert is_initial_segment(g, 16, parent)

    def test_path_graph_absorption(self, backend):
        g = G.path_graph(50)
        _, out, parent, _, _ = run_absorption(g, backend=backend)
        assert is_initial_segment(g, 0, parent)

    def test_star_graph(self, backend):
        g = G.star_graph(40)
        _, out, parent, _, _ = run_absorption(g, backend=backend)
        assert is_initial_segment(g, 0, parent)


class TestAbsorptionBounds:
    def test_iterations_near_sqrt(self):
        g = G.gnm_random_connected_graph(1024, 3072, seed=6)
        _, out, _, _, _ = run_absorption(g)
        logn = g.n.bit_length()
        # O(sqrt(n) log n) iterations
        assert out.iterations <= 10 * (g.n ** 0.5) * logn

    def test_work_near_linear(self):
        g = G.gnm_random_connected_graph(512, 2048, seed=7)
        _, _, _, _, t = run_absorption(g)
        logn = g.n.bit_length()
        # total (separator + absorption) work must be Õ(m)
        assert t.work <= 10 * g.m * logn**3

    def test_span_near_sqrt(self):
        g = G.gnm_random_connected_graph(1024, 3072, seed=8)
        _, _, _, _, t = run_absorption(g)
        logn = g.n.bit_length()
        assert t.span <= 30 * (g.n ** 0.5) * logn**3

    @given(st.integers(10, 60), st.integers(0, 10**6))
    @settings(max_examples=12, deadline=None)
    def test_property_initial_segment(self, n, seed):
        g = G.gnm_random_connected_graph(
            n, min(2 * n, n * (n - 1) // 2), seed=seed
        )
        root = seed % n
        _, out, parent, _, _ = run_absorption(g, root=root, seed=seed)
        assert is_initial_segment(g, root, parent)
